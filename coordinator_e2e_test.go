// The sharded serving tier end to end: real workers behind real HTTP
// front ends, a coordinator routing batches across them, and the
// failure modes the tier exists for — worker death mid-batch,
// coordinator restart over its journal — all while staying
// bit-identical to a lone Simulator at the same seeds.
package eqasm_test

import (
	"context"
	"errors"
	"maps"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"eqasm"
	"eqasm/internal/coordinator"
	"eqasm/internal/httpapi"
	"eqasm/internal/service"
	"eqasm/internal/wal"
)

// workerPool is a set of in-process eqasm-serve instances: each a real
// Service behind a real HTTP listener, with the handles a test needs
// to inspect or kill them.
type workerPool struct {
	urls    []string
	svcs    map[string]*service.Service
	servers map[string]*httptest.Server
}

func startWorkers(t testing.TB, n int, cfg service.Config) *workerPool {
	t.Helper()
	if cfg.Machine == nil {
		cfg.Machine = []eqasm.Option{eqasm.WithSeed(1)}
	}
	p := &workerPool{
		svcs:    make(map[string]*service.Service),
		servers: make(map[string]*httptest.Server),
	}
	for i := 0; i < n; i++ {
		svc, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(httpapi.New(svc).Handler())
		t.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		p.urls = append(p.urls, ts.URL)
		p.svcs[ts.URL] = svc
		p.servers[ts.URL] = ts
	}
	return p
}

func newCoordinator(t testing.TB, p *workerPool, cfg coordinator.Config) *coordinator.Coordinator {
	t.Helper()
	cfg.Workers = p.urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	cfg.Client = append([]eqasm.ClientOption{eqasm.WithPollInterval(2 * time.Millisecond)}, cfg.Client...)
	coord, err := coordinator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// simReference is the ground truth: a lone Simulator at the same seed,
// with Workers matching the service-side batch split (shots/BatchShots)
// so the per-batch seed derivation lines up shot for shot.
func simReference(t *testing.T, src string, shots int, seed int64, workers int) *eqasm.Result {
	t.Helper()
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: shots, Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assemble(t testing.TB, src string) *eqasm.Program {
	t.Helper()
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestCoordinatorBatchParity routes a multi-program batch across two
// workers and checks every request's histogram is bit-identical to a
// lone Simulator at the same explicit seed — through the coordinator
// as a library Backend, and again through the full wire topology
// (Client → coordinator HTTP front end → workers).
func TestCoordinatorBatchParity(t *testing.T) {
	const (
		shots      = 32
		batchShots = 8
	)
	pool := startWorkers(t, 2, service.Config{Workers: 2, BatchShots: batchShots})
	coord := newCoordinator(t, pool, coordinator.Config{})

	smoke := service.SmokePrograms()
	names := []string{"bell", "flip", "active_reset"}
	reqs := make([]eqasm.RunRequest, len(names))
	for i, name := range names {
		reqs[i] = eqasm.RunRequest{
			Program: assemble(t, smoke[name]),
			Options: eqasm.RunOptions{Shots: shots, Seed: int64(10 * (i + 1))},
			Tag:     name,
		}
	}
	job, err := coord.Submit(context.Background(), reqs...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		want := simReference(t, smoke[name], shots, int64(10*(i+1)), shots/batchShots)
		if !maps.Equal(results[i].Histogram, want.Histogram) {
			t.Errorf("%s: coordinator histogram %v, simulator %v", name, results[i].Histogram, want.Histogram)
		}
	}

	// Same batch over the wire: the public Client cannot tell the
	// coordinator's front end from a worker's.
	front := httptest.NewServer(httpapi.NewBackend(coord).Handler())
	defer front.Close()
	client := eqasm.NewClient(front.URL,
		eqasm.WithHTTPClient(front.Client()),
		eqasm.WithPollInterval(2*time.Millisecond))
	wireJob, err := client.Submit(context.Background(), reqs...)
	if err != nil {
		t.Fatal(err)
	}
	wireResults, err := wireJob.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if !maps.Equal(wireResults[i].Histogram, results[i].Histogram) {
			t.Errorf("%s: wire histogram %v differs from library histogram %v",
				name, wireResults[i].Histogram, results[i].Histogram)
		}
	}
	if st := coord.Stats(); st.JobsCompleted < 2 {
		t.Errorf("jobs_completed = %d, want >= 2", st.JobsCompleted)
	}
}

// TestCoordinatorWorkerKillRequeue kills the worker a long request
// routed to, mid-run, and checks the coordinator re-queues it onto the
// survivor with a bit-identical result: seeds derive from the request,
// not the placement, so a rerun elsewhere is the same computation.
func TestCoordinatorWorkerKillRequeue(t *testing.T) {
	const (
		shots      = 600_000
		batchShots = 10_000
		seed       = 7
	)
	pool := startWorkers(t, 2, service.Config{Workers: 2, BatchShots: batchShots})
	coord := newCoordinator(t, pool, coordinator.Config{})

	src := service.SmokePrograms()["bell"]
	prog := assemble(t, src)
	target, err := coord.RouteURL(prog)
	if err != nil {
		t.Fatal(err)
	}

	job, err := coord.Submit(context.Background(), eqasm.RunRequest{
		Program: prog,
		Options: eqasm.RunOptions{Shots: shots, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the target worker is actually executing shots, then
	// kill it: HTTP front end first (polls start failing), then the
	// service (in-flight compute stops).
	deadline := time.Now().Add(10 * time.Second)
	for pool.svcs[target].Stats().InflightShots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("target worker never started executing")
		}
		time.Sleep(time.Millisecond)
	}
	pool.servers[target].CloseClientConnections()
	pool.servers[target].Close()
	pool.svcs[target].Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("job after worker kill: %v", err)
	}
	want := simReference(t, src, shots, seed, shots/batchShots)
	if !maps.Equal(results[0].Histogram, want.Histogram) {
		t.Errorf("post-requeue histogram %v, simulator %v", results[0].Histogram, want.Histogram)
	}
	st := coord.Stats()
	if st.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", st.Requeues)
	}
	// The survivor did the (re)work.
	for url, svc := range pool.svcs {
		if url == target {
			continue
		}
		if got := svc.Stats().ShotsExecuted; got != shots {
			t.Errorf("survivor executed %d shots, want %d", got, shots)
		}
	}
}

// TestCoordinatorWALReplay restarts the coordinator over its journal:
// a batch admitted while no worker was reachable survives the restart
// and completes — bit-identically — in the next life.
func TestCoordinatorWALReplay(t *testing.T) {
	const (
		shots      = 64
		batchShots = 16
		seed       = 9
	)
	walPath := filepath.Join(t.TempDir(), "coord.wal")
	src := service.SmokePrograms()["bell"]

	// Life 1: the only worker is a dead address. The batch is admitted
	// (journaled) but cannot dispatch; Close abandons it mid-flight,
	// exactly as a crash would.
	log1, err := wal.Open(walPath, wal.WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := coordinator.New(coordinator.Config{
		Workers:        []string{"http://127.0.0.1:1"},
		HealthInterval: 10 * time.Millisecond,
		WorkerWait:     time.Minute,
		WAL:            log1,
	})
	if err != nil {
		t.Fatal(err)
	}
	job1, err := coord1.Submit(context.Background(), eqasm.RunRequest{
		Program: assemble(t, src),
		Options: eqasm.RunOptions{Shots: shots, Seed: seed},
		Tag:     "durable",
	})
	if err != nil {
		t.Fatal(err)
	}
	id := job1.ID()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-job1.Done():
		t.Fatal("abandoned job finalized; crash-equivalent close must leave it to recovery")
	default:
	}

	// Life 2: same journal, live worker. The batch is re-admitted
	// under its old ID and runs to completion.
	pool := startWorkers(t, 1, service.Config{Workers: 2, BatchShots: batchShots})
	log2, err := wal.Open(walPath, wal.WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	coord2 := newCoordinator(t, pool, coordinator.Config{WAL: log2})
	if got := coord2.Stats().RecoveredBatches; got != 1 {
		t.Fatalf("recovered_batches = %d, want 1", got)
	}
	job2, ok := coord2.Job(id)
	if !ok {
		t.Fatalf("recovered coordinator does not know batch %s", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := job2.Wait(ctx)
	if err != nil {
		t.Fatalf("recovered job: %v", err)
	}
	want := simReference(t, src, shots, seed, shots/batchShots)
	if !maps.Equal(results[0].Histogram, want.Histogram) {
		t.Errorf("recovered histogram %v, simulator %v", results[0].Histogram, want.Histogram)
	}
	if sts := job2.Requests(); sts[0].Tag != "durable" {
		t.Errorf("recovered tag %q, want %q", sts[0].Tag, "durable")
	}

	// The recovered sequence does not collide with the old ID space.
	job3, err := coord2.Submit(context.Background(), eqasm.RunRequest{
		Program: assemble(t, src),
		Options: eqasm.RunOptions{Shots: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job3.ID() == id {
		t.Errorf("fresh submit reused recovered ID %s", id)
	}
	if _, err := job3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorAffinity checks content-hash routing does what it is
// for: repeated submissions of one program land on one worker and turn
// into plan-cache hits there, while the other worker never sees it.
func TestCoordinatorAffinity(t *testing.T) {
	const runs = 6
	pool := startWorkers(t, 2, service.Config{Workers: 1, BatchShots: 32})
	coord := newCoordinator(t, pool, coordinator.Config{})

	src := service.SmokePrograms()["bell"]
	prog := assemble(t, src)
	target, err := coord.RouteURL(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		if _, err := coord.Run(context.Background(), prog, eqasm.RunOptions{Shots: 32, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.svcs[target].Stats()
	if st.PlanCacheHits != runs-1 {
		t.Errorf("target plan_cache_hits = %d, want %d (affinity should keep the program warm)", st.PlanCacheHits, runs-1)
	}
	for url, svc := range pool.svcs {
		if url == target {
			continue
		}
		if got := svc.Stats().ShotsExecuted; got != 0 {
			t.Errorf("non-affine worker executed %d shots, want 0", got)
		}
	}
}

// TestCoordinatorDrainAwareRouting drains the worker a program is
// affine to and checks new work routes around it — the rolling-restart
// story: drain, wait for the coordinator to notice, restart.
func TestCoordinatorDrainAwareRouting(t *testing.T) {
	pool := startWorkers(t, 2, service.Config{Workers: 1, BatchShots: 32})
	coord := newCoordinator(t, pool, coordinator.Config{})

	src := service.SmokePrograms()["flip"]
	prog := assemble(t, src)
	target, err := coord.RouteURL(prog)
	if err != nil {
		t.Fatal(err)
	}
	pool.svcs[target].Drain()

	// Wait for a probe to observe the drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var drained bool
		for _, w := range coord.Stats().WorkerPool {
			if w.URL == target && (w.Draining || !w.Healthy) {
				drained = true
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never observed the drain")
		}
		time.Sleep(2 * time.Millisecond)
	}

	res, err := coord.Run(context.Background(), prog, eqasm.RunOptions{Shots: 32, Seed: 3})
	if err != nil {
		t.Fatalf("run against drained pool: %v", err)
	}
	if res.Shots != 32 {
		t.Fatalf("ran %d shots, want 32", res.Shots)
	}
	if got := pool.svcs[target].Stats().ShotsExecuted; got != 0 {
		t.Errorf("drained worker executed %d shots, want 0", got)
	}
}

// TestCoordinatorRunStream checks the Backend stream surface: one
// ShotResult per shot, replayed from the worker's histogram.
func TestCoordinatorRunStream(t *testing.T) {
	const shots = 48
	pool := startWorkers(t, 2, service.Config{Workers: 2, BatchShots: 16})
	coord := newCoordinator(t, pool, coordinator.Config{})

	ch, err := coord.RunStream(context.Background(), assemble(t, service.SmokePrograms()["flip"]), eqasm.RunOptions{Shots: shots, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sr := range ch {
		if sr.Err != nil {
			t.Fatalf("stream error: %v", sr.Err)
		}
		if sr.Key != "1" {
			t.Fatalf("flip produced outcome %q, want \"1\"", sr.Key)
		}
		n++
	}
	if n != shots {
		t.Fatalf("streamed %d shots, want %d", n, shots)
	}
}

// flakyTransport fails the first n round trips with a dial error (or
// a non-dial error when op is set), then delegates.
type flakyTransport struct {
	n    int
	op   string
	next http.RoundTripper
	seen int
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.seen++
	if f.n > 0 {
		f.n--
		op := f.op
		if op == "" {
			op = "dial"
		}
		return nil, &net.OpError{Op: op, Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	return f.next.RoundTrip(r)
}

// TestClientRetryTransient checks WithRetry: dial errors (the request
// never reached a server) retry with backoff until the budget runs
// out; anything else fails fast.
func TestClientRetryTransient(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, Machine: []eqasm.Option{eqasm.WithSeed(1)}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	defer ts.Close()
	prog := assemble(t, service.SmokePrograms()["flip"])

	// Two dial failures, then success: a retry budget of 3 covers it.
	flaky := &flakyTransport{n: 2, next: ts.Client().Transport}
	client := eqasm.NewClient(ts.URL,
		eqasm.WithHTTPClient(&http.Client{Transport: flaky}),
		eqasm.WithPollInterval(2*time.Millisecond),
		eqasm.WithRetry(3, time.Millisecond))
	res, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4, Seed: 1})
	if err != nil {
		t.Fatalf("run through flaky transport: %v", err)
	}
	if res.Shots != 4 {
		t.Fatalf("ran %d shots, want 4", res.Shots)
	}

	// Budget exhausted: four dial failures beat a budget of 2.
	flaky = &flakyTransport{n: 4, next: ts.Client().Transport}
	client = eqasm.NewClient(ts.URL,
		eqasm.WithHTTPClient(&http.Client{Transport: flaky}),
		eqasm.WithRetry(2, time.Millisecond))
	if _, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4, Seed: 1}); err == nil {
		t.Fatal("run succeeded through a transport that always refuses")
	}
	if flaky.seen != 3 {
		t.Errorf("transport saw %d attempts, want 3 (1 + 2 retries)", flaky.seen)
	}

	// Non-dial errors are not retried: the request may have executed.
	flaky = &flakyTransport{n: 1, op: "read", next: ts.Client().Transport}
	client = eqasm.NewClient(ts.URL,
		eqasm.WithHTTPClient(&http.Client{Transport: flaky}),
		eqasm.WithRetry(3, time.Millisecond))
	if _, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4, Seed: 1}); err == nil {
		t.Fatal("non-dial transport error was retried into success")
	}
	if flaky.seen != 1 {
		t.Errorf("transport saw %d attempts, want 1 (non-dial errors fail fast)", flaky.seen)
	}
}

// TestServiceDrainSignals checks the drain surface the coordinator and
// rolling restarts depend on: draining stats, 503 healthz, and
// ErrDraining (an ErrClosed) on new submits while admitted work
// finishes.
func TestServiceDrainSignals(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, Machine: []eqasm.Option{eqasm.WithSeed(1)}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	defer ts.Close()
	client := eqasm.NewClient(ts.URL,
		eqasm.WithHTTPClient(ts.Client()),
		eqasm.WithPollInterval(2*time.Millisecond))
	prog := assemble(t, service.SmokePrograms()["flip"])

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueCapacity <= 0 {
		t.Errorf("queue_capacity = %d, want > 0", st.QueueCapacity)
	}
	if st.Draining {
		t.Error("fresh service reports draining")
	}

	svc.Drain()
	if st, err = client.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("drained service does not report draining")
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	_, err = client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4, Seed: 1})
	if err == nil {
		t.Fatal("submit to draining service succeeded")
	}
	var se *eqasm.ServiceError
	if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit to draining service: %v, want HTTP 503 ServiceError", err)
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Errorf("error %q does not mention draining", err)
	}
	if err := svc.DrainWait(context.Background()); err != nil {
		t.Fatalf("drain wait: %v", err)
	}
}

// benchBackendRuns drives b.N small runs through any Backend — the
// per-request overhead probe for the routing tier.
func benchBackendRuns(b *testing.B, backend eqasm.Backend, prog *eqasm.Program) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Run(context.Background(), prog, eqasm.RunOptions{Shots: 32, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinatorRequests compares small-request round trips:
// straight to one worker, through the coordinator, and through the
// coordinator with a durable (fsynced) journal — the cost of routing
// and of durability on the admission path.
func BenchmarkCoordinatorRequests(b *testing.B) {
	pool := startWorkers(b, 2, service.Config{Workers: 2, BatchShots: 32})
	prog := assemble(b, service.SmokePrograms()["flip"])
	b.Run("direct", func(b *testing.B) {
		client := eqasm.NewClient(pool.urls[0], eqasm.WithPollInterval(2*time.Millisecond))
		benchBackendRuns(b, client, prog)
	})
	b.Run("coordinator", func(b *testing.B) {
		benchBackendRuns(b, newCoordinator(b, pool, coordinator.Config{}), prog)
	})
	b.Run("coordinator-wal", func(b *testing.B) {
		log, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"))
		if err != nil {
			b.Fatal(err)
		}
		benchBackendRuns(b, newCoordinator(b, pool, coordinator.Config{WAL: log}), prog)
	})
}

// BenchmarkCoordinatorShots compares bulk throughput on a two-program
// batch: one worker running both programs versus the coordinator
// spreading them across two workers by content hash (distinct programs
// rank to distinct workers; one program's shots stay put for cache
// warmth, so scale-out comes from program diversity).
func BenchmarkCoordinatorShots(b *testing.B) {
	const shots = 200_000
	pool := startWorkers(b, 2, service.Config{Workers: 2, BatchShots: 10_000})
	smoke := service.SmokePrograms()
	reqs := []eqasm.RunRequest{
		{Program: assemble(b, smoke["bell"]), Options: eqasm.RunOptions{Shots: shots, Seed: 3}},
		{Program: assemble(b, smoke["active_reset"]), Options: eqasm.RunOptions{Shots: shots, Seed: 4}},
	}
	bench := func(b *testing.B, backend eqasm.Backend) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := backend.Submit(context.Background(), reqs...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(2*shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	}
	b.Run("direct-1worker", func(b *testing.B) {
		bench(b, eqasm.NewClient(pool.urls[0], eqasm.WithPollInterval(2*time.Millisecond)))
	})
	b.Run("coordinator-2workers", func(b *testing.B) {
		bench(b, newCoordinator(b, pool, coordinator.Config{}))
	})
}
