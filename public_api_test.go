// Tests of the public eqasm facade: bit-identical parity with the
// pre-facade core execution paths, the typed error model, context
// cancellation threading through shots, and streaming.
package eqasm_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"eqasm"
	"eqasm/internal/core"
	"eqasm/internal/microarch"
)

// coreShotKeys runs src on the pre-facade sequential path
// (core.System.RunShots) and returns every shot's histogram key in shot
// order.
func coreShotKeys(t *testing.T, seed int64, src string, shots int) []string {
	t.Helper()
	opts := applyFixtureTopo(t, core.Options{Seed: seed}, fixtureTopo(src))
	sys, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(src); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, shots)
	err = sys.RunShots(shots, func(_ int, m *microarch.Machine) {
		last := map[int]int{}
		for _, r := range m.Measurements() {
			last[r.Qubit] = r.Result
		}
		qs := make([]int, 0, len(last))
		for q := range last {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		key := ""
		for _, q := range qs {
			key += fmt.Sprint(last[q])
		}
		keys = append(keys, key)
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// Backend.Run with a fixed seed is bit-identical to the pre-refactor
// core.RunShots output for every shipped program.
func TestBackendRunMatchesCoreRunShots(t *testing.T) {
	const (
		seed  = 7
		shots = 50
	)
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range shippedPrograms(t) {
		t.Run(name, func(t *testing.T) {
			shots, sim := shots, sim
			copts := fixtureSimOptions(src)
			if copts != nil {
				// Chip-directive fixtures (the chain16 fusion workload)
				// need their own stack, and the interpreted reference
				// pushes 2^16 amplitudes per gate — a few shots suffice
				// for bit-equality.
				shots = 6
				var err error
				sim, err = eqasm.NewSimulator(append([]eqasm.Option{eqasm.WithSeed(seed)}, copts...)...)
				if err != nil {
					t.Fatal(err)
				}
			}
			want := coreShotKeys(t, seed, src, shots)

			prog, err := eqasm.Assemble(src, copts...)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: shots})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]string, 0, shots)
			for sr := range stream {
				if sr.Err != nil {
					t.Fatal(sr.Err)
				}
				if sr.Shot != len(got) {
					t.Fatalf("shot %d arrived out of order at position %d (workers=1)", sr.Shot, len(got))
				}
				got = append(got, sr.Key)
			}
			if len(got) != shots {
				t.Fatalf("streamed %d shots, want %d", len(got), shots)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shot %d: backend %q, core %q", i, got[i], want[i])
				}
			}

			// Run aggregates exactly the same outcomes.
			res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: shots})
			if err != nil {
				t.Fatal(err)
			}
			if res.Shots != shots {
				t.Fatalf("ran %d shots, want %d", res.Shots, shots)
			}
			wantHist := map[string]int{}
			for _, k := range want {
				wantHist[k]++
			}
			if fmt.Sprint(res.Histogram) != fmt.Sprint(wantHist) {
				t.Fatalf("histogram = %v, core = %v", res.Histogram, wantHist)
			}
		})
	}
}

// The deprecated core.ParallelShots and the Backend fan-out share one
// code path: same seeds, same partitioning, same per-shot results.
func TestParallelShotsDelegatesToBackendFanOut(t *testing.T) {
	const (
		seed    = 11
		shots   = 64
		workers = 4
	)
	src := shippedPrograms(t)["bell.eqasm"]

	oldKeys := make(map[int]string, shots)
	err := core.ParallelShots(core.Options{Seed: seed}, src, shots, workers,
		func(shot int, m *microarch.Machine) {
			key := ""
			for _, r := range m.Measurements() {
				key += fmt.Sprint(r.Result)
			}
			oldKeys[shot] = key
		})
	if err != nil {
		t.Fatal(err)
	}

	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(seed), eqasm.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: shots})
	if err != nil {
		t.Fatal(err)
	}
	newKeys := make(map[int]string, shots)
	for sr := range stream {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		key := ""
		for _, m := range sr.Measurements {
			key += fmt.Sprint(m.Result)
		}
		newKeys[sr.Shot] = key
	}
	if len(newKeys) != shots || len(oldKeys) != shots {
		t.Fatalf("collected %d/%d shots, want %d", len(oldKeys), len(newKeys), shots)
	}
	for shot, want := range oldKeys {
		if newKeys[shot] != want {
			t.Fatalf("shot %d: backend %q, ParallelShots %q", shot, newKeys[shot], want)
		}
	}
}

// Assembly faults surface as *AssembleError with line and column.
func TestAssembleErrorPositions(t *testing.T) {
	_, err := eqasm.Assemble("SMIS S0, {0}\nFROBNICATE S0\nLDI R99, 1\nSTOP")
	if err == nil {
		t.Fatal("bad program assembled")
	}
	var aerr *eqasm.AssembleError
	if !errors.As(err, &aerr) {
		t.Fatalf("error is %T, want *AssembleError", err)
	}
	if len(aerr.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %v, want 2", aerr.Diagnostics)
	}
	d0 := aerr.Diagnostics[0]
	if d0.Line != 2 || d0.Col != 1 {
		t.Fatalf("unknown-op diagnostic at %d:%d, want 2:1 (%s)", d0.Line, d0.Col, d0.Msg)
	}
	d1 := aerr.Diagnostics[1]
	if d1.Line != 3 || d1.Col != 5 {
		t.Fatalf("register diagnostic at %d:%d, want 3:5 (%s)", d1.Line, d1.Col, d1.Msg)
	}
}

// Runtime faults surface as *RuntimeError carrying PC and cycle.
func TestRuntimeErrorCarriesPCAndCycle(t *testing.T) {
	prog, err := eqasm.Assemble("LDI R1, -8\nLD R2, R1(0)\nSTOP")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 3})
	if err == nil {
		t.Fatal("faulting program ran clean")
	}
	var rerr *eqasm.RuntimeError
	if !errors.As(err, &rerr) {
		t.Fatalf("error is %T, want *RuntimeError", err)
	}
	if rerr.Shot != 0 {
		t.Fatalf("failing shot = %d, want 0", rerr.Shot)
	}
	if rerr.PC != 1 {
		t.Fatalf("faulting PC = %d, want 1 (the LD)", rerr.PC)
	}
	if rerr.Cycle < 0 {
		t.Fatalf("cycle = %d, want >= 0", rerr.Cycle)
	}
	var merr *microarch.RuntimeError
	if !errors.As(err, &merr) {
		t.Fatal("RuntimeError does not unwrap to the microarchitectural fault")
	}
	if res == nil || res.Shots != 0 {
		t.Fatalf("partial result = %+v, want 0 completed shots", res)
	}
}

// Context cancellation threads through shots: a long run stops at a
// shot boundary with a partial result.
func TestRunCancellationMidShots(t *testing.T) {
	src := shippedPrograms(t)["bell.eqasm"]
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	const shots = 10_000_000 // far more than can run before the cancel lands
	done := make(chan struct{})
	var res *eqasm.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = sim.Run(ctx, prog, eqasm.RunOptions{Shots: shots})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run never returned")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	if res == nil || res.Shots == 0 || res.Shots >= shots {
		t.Fatalf("partial result = %+v, want some but not all shots", res)
	}
}

// A cancelled stream delivers its terminal Err to a consumer that is
// still receiving — cancellation must not be mistakable for normal
// completion.
func TestRunStreamDeliversCancellationError(t *testing.T) {
	src := shippedPrograms(t)["bell.eqasm"]
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		stream, err := sim.RunStream(ctx, prog, eqasm.RunOptions{Shots: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		var terminal error
		n := 0
		for sr := range stream {
			if sr.Err != nil {
				terminal = sr.Err
				break
			}
			n++
			if n == 3 {
				cancel()
			}
		}
		for range stream {
		} // drain to completion
		cancel()
		if !errors.Is(terminal, context.Canceled) {
			t.Fatalf("round %d: terminal err = %v after %d shots, want context.Canceled", round, terminal, n)
		}
	}
}

// The default-shot and seed options feed Backend runs.
func TestRunOptionDefaults(t *testing.T) {
	src := shippedPrograms(t)["bell.eqasm"]
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(5), eqasm.WithShots(17))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 17 {
		t.Fatalf("default shots = %d, want 17", res.Shots)
	}
	if len(res.Qubits) != 2 || res.Qubits[0] != 0 || res.Qubits[1] != 2 {
		t.Fatalf("qubits = %v, want [0 2]", res.Qubits)
	}
	// Reproducibility: the same seed gives the same histogram; a
	// RunOptions seed overrides it.
	res2, err := sim.Run(context.Background(), prog, eqasm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Histogram) != fmt.Sprint(res2.Histogram) {
		t.Fatalf("same seed diverged: %v vs %v", res.Histogram, res2.Histogram)
	}
	res3, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Seed: 1234, Shots: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Shots != 400 {
		t.Fatalf("override shots = %d, want 400", res3.Shots)
	}
}

// Compile produces a program the Backend executes with the documented
// outcome, under the same options the service uses.
func TestCompileThroughPublicAPI(t *testing.T) {
	bell := &eqasm.Circuit{
		Name:      "bell",
		NumQubits: 3, // the two-qubit chip names its qubits 0 and 2
		Gates: []eqasm.Gate{
			{Name: "H", Qubits: []int{0}},
			{Name: "CNOT", Qubits: []int{0, 2}},
			{Name: "MEASZ", Qubits: []int{0}, Measure: true},
			{Name: "MEASZ", Qubits: []int{2}, Measure: true},
		},
	}
	prog, err := eqasm.Compile(bell, eqasm.WithInitWaitCycles(10000), eqasm.WithSOMQ())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 120})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for key, n := range res.Histogram {
		if key != "00" && key != "11" {
			t.Fatalf("uncorrelated outcome %q", key)
		}
		total += n
	}
	if total != 120 {
		t.Fatalf("histogram sums to %d", total)
	}
	// Too-large circuits are rejected against the chip context.
	if _, err := eqasm.Compile(&eqasm.Circuit{NumQubits: 9,
		Gates: []eqasm.Gate{{Name: "X", Qubits: []int{8}}}}); err == nil {
		t.Fatal("9-qubit circuit compiled for the two-qubit chip")
	}
}

// Invalid run options are loud errors on every backend, not silent
// empty results.
func TestNegativeShotsRejected(t *testing.T) {
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: -5}); err == nil {
		t.Fatal("negative shot count ran clean")
	}
	if _, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: -5}); err == nil {
		t.Fatal("negative shot count streamed clean")
	}
	if _, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Workers: -2}); err == nil {
		t.Fatal("negative worker count ran clean")
	}
}

// Unknown context options fail fast with a useful message.
func TestOptionValidation(t *testing.T) {
	if _, err := eqasm.Assemble("STOP", eqasm.WithTopology("hypercube")); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := eqasm.NewSimulator(eqasm.WithTopology("hypercube")); err == nil {
		t.Fatal("simulator accepted unknown topology")
	}
	if _, err := eqasm.Compile(&eqasm.Circuit{NumQubits: 1,
		Gates: []eqasm.Gate{{Name: "X", Qubits: []int{0}}}},
		eqasm.WithSchedule("random")); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}
