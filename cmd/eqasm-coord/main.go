// Command eqasm-coord is the sharded serving tier's front door: a
// coordinator that speaks the same /v1/batches wire protocol as
// eqasm-serve but routes each request across a pool of workers by
// content-hash affinity (rendezvous hashing over the program's sha256,
// the hash workers key their caches on), spills away from overloaded
// workers, re-queues work stranded by a worker death, and — with -wal
// — journals every accepted batch so a restarted coordinator finishes
// what the previous one admitted. Results are bit-identical to a lone
// simulator at the same explicit seed, regardless of placement.
//
// The public eqasm.Client cannot tell a coordinator from a worker.
//
// Usage:
//
//	eqasm-coord -workers http://a:8080,http://b:8080 [-addr :8090] [-wal coord.wal] [-topo twoqubit]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eqasm"
	"eqasm/internal/coordinator"
	"eqasm/internal/httpapi"
	"eqasm/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.String("workers", "", "comma-separated eqasm-serve base URLs (required)")
	walPath := flag.String("wal", "", "write-ahead log path; empty disables durability")
	noFsync := flag.Bool("wal-nofsync", false, "skip fsync on journal appends (faster, loses the tail on power failure)")
	topoName := flag.String("topo", "twoqubit", "chip topology the pool simulates: twoqubit, surface7, surface17, iontrap5, ibmqx2")
	noisy := flag.Bool("noise", false, "workers use the calibrated noise model (affects local compile defaults only)")
	health := flag.Duration("health", 0, "worker health-probe interval (0 = default)")
	spill := flag.Float64("spill", 0, "queue-fullness fraction at which affinity spills to the next worker (0 = default)")
	attempts := flag.Int("attempts", 0, "max dispatch attempts per request (0 = default)")
	cacheSize := flag.Int("cache", 0, "resolved-program cache entries (0 = default)")
	wait := flag.Duration("wait", 0, "how long a batch waits for an eligible worker (0 = default)")
	flag.Parse()

	urls := strings.Split(*workers, ",")
	pool := urls[:0]
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			pool = append(pool, u)
		}
	}
	if len(pool) == 0 {
		log.Fatal("eqasm-coord: -workers is required (comma-separated eqasm-serve URLs)")
	}

	machine := []eqasm.Option{eqasm.WithTopology(*topoName)}
	if *noisy {
		machine = append(machine, eqasm.WithCalibratedNoise())
	}
	jlog := wal.Log(wal.Nop())
	if *walPath != "" {
		fl, err := wal.Open(*walPath, wal.WithFsync(!*noFsync))
		if err != nil {
			log.Fatalf("eqasm-coord: %v", err)
		}
		jlog = fl
	}

	coord, err := coordinator.New(coordinator.Config{
		Workers:        pool,
		Machine:        machine,
		HealthInterval: *health,
		SpillHighWater: *spill,
		MaxAttempts:    *attempts,
		CacheSize:      *cacheSize,
		WorkerWait:     *wait,
		WAL:            jlog,
	})
	if err != nil {
		log.Fatalf("eqasm-coord: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewBackend(coord).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No WriteTimeout: "wait": true responses legitimately span a
		// batch's whole run.
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	st := coord.Stats()
	log.Printf("eqasm-coord: listening on %s (topology %s, %d workers, %d healthy, %d batches recovered)",
		*addr, coord.Chip(), st.Workers, st.WorkersHealthy, st.RecoveredBatches)

	select {
	case err := <-errc:
		log.Fatalf("eqasm-coord: %v", err)
	case <-ctx.Done():
	}

	// Crash-equivalent shutdown: stop the listener, then abandon
	// in-flight batches to the journal — a restart over the same -wal
	// re-admits and finishes them. The workers keep running.
	log.Print("eqasm-coord: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("eqasm-coord: http shutdown: %v", err)
	}
	if err := coord.Close(); err != nil {
		log.Printf("eqasm-coord: close: %v", err)
	}
	log.Print("eqasm-coord: bye")
}
