// Command eqasm-run executes an eQASM program (source or binary), a
// cQASM circuit or an OpenQASM 2.0 circuit on the QuMA_v2
// microarchitecture simulator and reports measurement results,
// execution statistics and, optionally, the device-operation trace. It
// is a thin shell over the public eqasm package:
// Assemble/LoadBinary/CompileCircuit/CompileOpenQASM bind the program
// to its chip context, and a Simulator Backend streams the shots.
// Files ending in .cq or .cqasm are compiled as cQASM and files ending
// in .qasm as OpenQASM (override detection with -cqasm/-openqasm, or
// rely on eqasm.DetectFormat for other extensions); -emit prints the
// compiled assembly.
//
// Usage:
//
//	eqasm-run [-topo twoqubit] [-shots N] [-noise] [-trace] prog.eqasm
//	eqasm-run [-somq] [-schedule alap] [-emit] circuit.cq
//	eqasm-run [-emit] circuit.qasm
//	eqasm-run -param theta=1.5708 circuit.cq
//	eqasm-run -sweep theta=0:6.2832:64 -shots 100 circuit.qasm
//	eqasm-run -json prog.eqasm
//	eqasm-run -bin prog.bin
//
// -json prints the full eqasm.Result machine-readably (histogram,
// measured qubits, last-shot stats, summed totals, optional trace)
// instead of the human-oriented report.
//
// Parametric programs (rx/ry/rz with %name angles) bind their
// parameters per run: -param name=value (repeatable) fixes a value,
// and -sweep name=start:stop:steps runs an inclusive linear grid of
// points as one batch over a single compiled plan — the program is
// compiled once and each point patches the plan's rotation slots.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"eqasm"
)

// paramFlags collects repeated -param name=value bindings.
type paramFlags map[string]float64

func (p paramFlags) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value for %s: %v", name, err)
	}
	p[name] = v
	return nil
}

// sweepFlag is a -sweep name=start:stop:steps grid specification.
type sweepFlag struct {
	name        string
	start, stop float64
	steps       int
}

func (s *sweepFlag) String() string {
	if s == nil || s.name == "" {
		return ""
	}
	return fmt.Sprintf("%s=%g:%g:%d", s.name, s.start, s.stop, s.steps)
}

func (s *sweepFlag) Set(v string) error {
	name, grid, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=start:stop:steps, got %q", v)
	}
	parts := strings.Split(grid, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want name=start:stop:steps, got %q", v)
	}
	var err error
	if s.start, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return fmt.Errorf("bad start: %v", err)
	}
	if s.stop, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return fmt.Errorf("bad stop: %v", err)
	}
	if s.steps, err = strconv.Atoi(parts[2]); err != nil || s.steps < 1 {
		return fmt.Errorf("steps must be a positive integer, got %q", parts[2])
	}
	s.name = name
	return nil
}

// points renders the inclusive linear grid.
func (s *sweepFlag) points() []float64 {
	out := make([]float64, s.steps)
	for i := range out {
		if s.steps == 1 {
			out[i] = s.start
			continue
		}
		out[i] = s.start + float64(i)*(s.stop-s.start)/float64(s.steps-1)
	}
	return out
}

func main() {
	topoName := flag.String("topo", "twoqubit", "chip topology: "+strings.Join(eqasm.Topologies(), ", "))
	confPath := flag.String("config", "", "hardware configuration file (topology + operations); overrides -topo")
	shots := flag.Int("shots", 1, "number of repetitions")
	noisy := flag.Bool("noise", false, "use the calibrated noise model instead of an ideal chip")
	trace := flag.Bool("trace", false, "print the device-operation trace")
	bin := flag.Bool("bin", false, "input is a binary instruction image")
	cq := flag.Bool("cqasm", false, "input is cQASM circuit text (implied by a .cq/.cqasm extension)")
	oq := flag.Bool("openqasm", false, "input is OpenQASM 2.0 circuit text (implied by a .qasm extension)")
	somq := flag.Bool("somq", false, "combine same-name gates per timing point when compiling a circuit")
	schedName := flag.String("schedule", "asap", "circuit compile scheduling: asap or alap")
	emit := flag.Bool("emit", false, "print the compiled eQASM assembly before running (circuit input)")
	seed := flag.Int64("seed", 1, "random seed")
	backend := flag.String("backend", "auto", "chip simulation backend: auto, statevector, densitymatrix or stabilizer")
	fusion := flag.String("fusion", "", "plan-time gate fusion: on or off (default: backend setting, on); -fusion=off for A/B runs")
	asJSON := flag.Bool("json", false, "print the full result as JSON (histogram, qubits, stats, totals, backend, gate profile)")
	params := paramFlags{}
	flag.Var(params, "param", "bind a rotation parameter, name=value in radians (repeatable)")
	var sweep sweepFlag
	flag.Var(&sweep, "sweep", "sweep a parameter over an inclusive linear grid, name=start:stop:steps (one batch, one compiled plan)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "eqasm-run: exactly one input file required")
		os.Exit(2)
	}
	opts := []eqasm.Option{eqasm.WithSeed(*seed), eqasm.WithBackend(*backend)}
	// Noise options are last-wins: -noise goes first so a noise model in
	// the -config file takes precedence over it.
	if *noisy {
		opts = append(opts, eqasm.WithCalibratedNoise())
	}
	if *confPath != "" {
		opts = append(opts, eqasm.WithHardwareConfig(*confPath))
	} else {
		opts = append(opts, eqasm.WithTopology(*topoName))
	}
	if *trace {
		opts = append(opts, eqasm.WithDeviceTrace())
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// Extension first (".cqasm" also ends in ".qasm", so the cQASM
	// extensions are checked before the OpenQASM one), explicit flags
	// win, and unrecognized extensions fall back to header sniffing.
	format := eqasm.FormatEQASM
	switch name := flag.Arg(0); {
	case *cq:
		format = eqasm.FormatCQASM
	case *oq:
		format = eqasm.FormatOpenQASM
	case strings.HasSuffix(name, ".cq") || strings.HasSuffix(name, ".cqasm"):
		format = eqasm.FormatCQASM
	case strings.HasSuffix(name, ".qasm"):
		format = eqasm.FormatOpenQASM
	case strings.HasSuffix(name, ".eqasm"):
	default:
		format = eqasm.DetectFormat(string(data))
	}
	var prog *eqasm.Program
	switch {
	case *bin:
		prog, err = eqasm.LoadBinary(data, opts...)
	case format == eqasm.FormatCQASM || format == eqasm.FormatOpenQASM:
		copts := append(append([]eqasm.Option{}, opts...), eqasm.WithSchedule(*schedName))
		if *somq {
			copts = append(copts, eqasm.WithSOMQ())
		}
		if format == eqasm.FormatOpenQASM {
			prog, err = eqasm.CompileOpenQASM(string(data), copts...)
		} else {
			prog, err = eqasm.CompileCircuit(string(data), copts...)
		}
	default:
		prog, err = eqasm.Assemble(string(data), opts...)
	}
	if err != nil {
		fatal(err)
	}
	if *emit {
		fmt.Println(prog.Text())
	}
	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		fatal(err)
	}

	if sweep.name != "" {
		runSweep(sim, prog, params, &sweep, *shots, *fusion, *asJSON)
		return
	}

	ropts := eqasm.RunOptions{Shots: *shots, Params: params.values(), Fusion: *fusion}

	if *asJSON {
		res, err := sim.Run(context.Background(), prog, ropts)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	stream, err := sim.RunStream(context.Background(), prog, ropts)
	if err != nil {
		fatal(err)
	}
	counts := map[string]int{}
	var stats eqasm.ExecStats
	for sr := range stream {
		if sr.Err != nil {
			fatal(sr.Err)
		}
		var bits []string
		for _, m := range sr.Measurements {
			bits = append(bits, fmt.Sprintf("q%d=%d", m.Qubit, m.Result))
		}
		key := strings.Join(bits, " ")
		if key == "" {
			key = "(no measurements)"
		}
		counts[key]++
		stats = sr.Stats
		if *trace && sr.Shot == 0 {
			fmt.Println("device trace (shot 0):")
			for _, op := range sr.Trace {
				fmt.Printf("  %s\n", op)
			}
		}
	}
	fmt.Printf("outcomes over %d shot(s):\n", *shots)
	for k, n := range counts {
		fmt.Printf("  %-30s %6d  (%.1f%%)\n", k, n, 100*float64(n)/float64(*shots))
	}
	fmt.Printf("last shot: %d instructions, %d bundles, %d quantum ops, %d cancelled, %d ns\n",
		stats.Instructions, stats.Bundles, stats.QuantumOps, stats.CancelledOps, stats.DurationNs)
}

// values returns the bindings as a plain map, nil when empty (so a
// non-parametric program run without -param skips binding entirely).
func (p paramFlags) values() map[string]float64 {
	if len(p) == 0 {
		return nil
	}
	return map[string]float64(p)
}

// runSweep executes one batch over the -sweep grid: every point is one
// RunRequest of the same compiled program with a different parameter
// binding, so the whole grid shares a single execution plan.
func runSweep(sim *eqasm.Simulator, prog *eqasm.Program, base paramFlags, sweep *sweepFlag, shots int, fusion string, asJSON bool) {
	points := sweep.points()
	reqs := make([]eqasm.RunRequest, len(points))
	for i, v := range points {
		p := make(map[string]float64, len(base)+1)
		for k, bv := range base {
			p[k] = bv
		}
		p[sweep.name] = v
		reqs[i] = eqasm.RunRequest{
			Program: prog,
			Options: eqasm.RunOptions{Shots: shots, Fusion: fusion},
			Params:  p,
			Tag:     fmt.Sprintf("%s=%g", sweep.name, v),
		}
	}
	job, err := sim.Submit(context.Background(), reqs...)
	if err != nil {
		fatal(err)
	}
	results, err := job.Wait(context.Background())
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("sweep %s over %d point(s), %d shot(s) each:\n", sweep, len(points), shots)
	for i, res := range results {
		fmt.Printf("  %-24s %s\n", reqs[i].Tag, histLine(res.Histogram, shots))
	}
}

// histLine renders a histogram as "key:count" pairs, keys ascending.
func histLine(hist map[string]int, shots int) string {
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		label := k
		if label == "" {
			label = "(none)"
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, hist[k]))
	}
	if len(parts) == 0 {
		return "(no shots)"
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqasm-run:", err)
	os.Exit(1)
}
