// Command eqasm-run executes an eQASM program (source or binary) or a
// cQASM circuit on the QuMA_v2 microarchitecture simulator and reports
// measurement results, execution statistics and, optionally, the
// device-operation trace. It is a thin shell over the public eqasm
// package: Assemble/LoadBinary/CompileCircuit bind the program to its
// chip context, and a Simulator Backend streams the shots. Files ending
// in .cq or .cqasm are compiled through the pass pipeline (override
// detection with -cqasm); -emit prints the compiled assembly.
//
// Usage:
//
//	eqasm-run [-topo twoqubit] [-shots N] [-noise] [-trace] prog.eqasm
//	eqasm-run [-somq] [-schedule alap] [-emit] circuit.cq
//	eqasm-run -json prog.eqasm
//	eqasm-run -bin prog.bin
//
// -json prints the full eqasm.Result machine-readably (histogram,
// measured qubits, last-shot stats, summed totals, optional trace)
// instead of the human-oriented report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"eqasm"
)

func main() {
	topoName := flag.String("topo", "twoqubit", "chip topology: "+strings.Join(eqasm.Topologies(), ", "))
	confPath := flag.String("config", "", "hardware configuration file (topology + operations); overrides -topo")
	shots := flag.Int("shots", 1, "number of repetitions")
	noisy := flag.Bool("noise", false, "use the calibrated noise model instead of an ideal chip")
	trace := flag.Bool("trace", false, "print the device-operation trace")
	bin := flag.Bool("bin", false, "input is a binary instruction image")
	cq := flag.Bool("cqasm", false, "input is cQASM circuit text (implied by a .cq/.cqasm extension)")
	somq := flag.Bool("somq", false, "combine same-name gates per timing point when compiling cQASM")
	schedName := flag.String("schedule", "asap", "cQASM compile scheduling: asap or alap")
	emit := flag.Bool("emit", false, "print the compiled eQASM assembly before running (cQASM input)")
	seed := flag.Int64("seed", 1, "random seed")
	backend := flag.String("backend", "auto", "chip simulation backend: auto, statevector, densitymatrix or stabilizer")
	asJSON := flag.Bool("json", false, "print the full result as JSON (histogram, qubits, stats, totals, backend, gate profile)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "eqasm-run: exactly one input file required")
		os.Exit(2)
	}
	opts := []eqasm.Option{eqasm.WithSeed(*seed), eqasm.WithBackend(*backend)}
	// Noise options are last-wins: -noise goes first so a noise model in
	// the -config file takes precedence over it.
	if *noisy {
		opts = append(opts, eqasm.WithCalibratedNoise())
	}
	if *confPath != "" {
		opts = append(opts, eqasm.WithHardwareConfig(*confPath))
	} else {
		opts = append(opts, eqasm.WithTopology(*topoName))
	}
	if *trace {
		opts = append(opts, eqasm.WithDeviceTrace())
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	isCQASM := *cq || strings.HasSuffix(flag.Arg(0), ".cq") || strings.HasSuffix(flag.Arg(0), ".cqasm")
	var prog *eqasm.Program
	switch {
	case *bin:
		prog, err = eqasm.LoadBinary(data, opts...)
	case isCQASM:
		copts := append(append([]eqasm.Option{}, opts...), eqasm.WithSchedule(*schedName))
		if *somq {
			copts = append(copts, eqasm.WithSOMQ())
		}
		prog, err = eqasm.CompileCircuit(string(data), copts...)
	default:
		prog, err = eqasm.Assemble(string(data), opts...)
	}
	if err != nil {
		fatal(err)
	}
	if *emit {
		fmt.Println(prog.Text())
	}
	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: *shots})
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	stream, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: *shots})
	if err != nil {
		fatal(err)
	}
	counts := map[string]int{}
	var stats eqasm.ExecStats
	for sr := range stream {
		if sr.Err != nil {
			fatal(sr.Err)
		}
		var bits []string
		for _, m := range sr.Measurements {
			bits = append(bits, fmt.Sprintf("q%d=%d", m.Qubit, m.Result))
		}
		key := strings.Join(bits, " ")
		if key == "" {
			key = "(no measurements)"
		}
		counts[key]++
		stats = sr.Stats
		if *trace && sr.Shot == 0 {
			fmt.Println("device trace (shot 0):")
			for _, op := range sr.Trace {
				fmt.Printf("  %s\n", op)
			}
		}
	}
	fmt.Printf("outcomes over %d shot(s):\n", *shots)
	for k, n := range counts {
		fmt.Printf("  %-30s %6d  (%.1f%%)\n", k, n, 100*float64(n)/float64(*shots))
	}
	fmt.Printf("last shot: %d instructions, %d bundles, %d quantum ops, %d cancelled, %d ns\n",
		stats.Instructions, stats.Bundles, stats.QuantumOps, stats.CancelledOps, stats.DurationNs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqasm-run:", err)
	os.Exit(1)
}
