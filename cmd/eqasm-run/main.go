// Command eqasm-run executes an eQASM program (source or binary) on the
// QuMA_v2 microarchitecture simulator and reports measurement results,
// execution statistics and, optionally, the device-operation trace.
//
// Usage:
//
//	eqasm-run [-topo twoqubit] [-shots N] [-noise] [-trace] prog.eqasm
//	eqasm-run -bin prog.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eqasm/internal/core"
	"eqasm/internal/experiments"
	"eqasm/internal/hwconf"
	"eqasm/internal/isa"
	"eqasm/internal/microarch"
	"eqasm/internal/quantum"
	"eqasm/internal/topology"
)

func main() {
	topoName := flag.String("topo", "twoqubit", "chip topology: surface7, twoqubit")
	confPath := flag.String("config", "", "hardware configuration file (topology + operations); overrides -topo")
	shots := flag.Int("shots", 1, "number of repetitions")
	noisy := flag.Bool("noise", false, "use the calibrated noise model instead of an ideal chip")
	trace := flag.Bool("trace", false, "print the device-operation trace")
	bin := flag.Bool("bin", false, "input is a binary instruction image")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "eqasm-run: exactly one input file required")
		os.Exit(2)
	}
	var topo *topology.Topology
	var opCfg *isa.OpConfig
	var confNoise *quantum.NoiseModel
	if *confPath != "" {
		f, t, c, err := hwconf.LoadFull(*confPath)
		if err != nil {
			fatal(err)
		}
		topo, opCfg = t, c
		if f.Noise != nil {
			m, err := f.NoiseModel()
			if err != nil {
				fatal(err)
			}
			confNoise = &m
		}
	} else {
		switch *topoName {
		case "surface7":
			topo = topology.Surface7()
		case "twoqubit":
			topo = topology.TwoQubit()
		default:
			fmt.Fprintf(os.Stderr, "eqasm-run: unknown topology %q\n", *topoName)
			os.Exit(2)
		}
	}
	noise := quantum.Ideal()
	if *noisy {
		noise = experiments.CalibratedNoise()
	}
	if confNoise != nil {
		noise = *confNoise
	}
	sys, err := core.NewSystem(core.Options{
		Topology:        topo,
		OpConfig:        opCfg,
		Noise:           noise,
		Seed:            *seed,
		RecordDeviceOps: *trace,
	})
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *bin {
		words, err := isa.BytesToWords(data)
		if err != nil {
			fatal(err)
		}
		prog, err := isa.Default.DecodeProgram(words, sys.OpConfig)
		if err != nil {
			fatal(err)
		}
		sys.LoadProgram(prog)
	} else if err := sys.Load(string(data)); err != nil {
		fatal(err)
	}

	counts := map[string]int{}
	err = sys.RunShots(*shots, func(shot int, m *microarch.Machine) {
		var bits []string
		for _, r := range m.Measurements() {
			bits = append(bits, fmt.Sprintf("q%d=%d", r.Qubit, r.Result))
		}
		key := strings.Join(bits, " ")
		if key == "" {
			key = "(no measurements)"
		}
		counts[key]++
		if *trace && shot == 0 {
			fmt.Println("device trace (shot 0):")
			for _, op := range m.DeviceTrace() {
				fmt.Printf("  %s\n", op)
			}
		}
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("outcomes over %d shot(s):\n", *shots)
	for k, n := range counts {
		fmt.Printf("  %-30s %6d  (%.1f%%)\n", k, n, 100*float64(n)/float64(*shots))
	}
	st := sys.Machine.Stats()
	fmt.Printf("last shot: %d instructions, %d bundles, %d quantum ops, %d cancelled, %d ns\n",
		st.InstructionsExecuted, st.BundlesIssued, st.QuantumOpsTriggered, st.OpsCancelled, st.FinalTimeNs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqasm-run:", err)
	os.Exit(1)
}
