// Command eqasm-serve exposes the eQASM execution service over HTTP: the
// classical host of Fig. 1 as a network service. Jobs carry eQASM source
// or a circuit to compile; batches (/v1/batches) carry N programs as one
// queued unit with per-request histograms. The service assembles once
// (content-hash cache), fans shots over a worker pool of simulated
// QuMA_v2 machines, and aggregates measurement histograms. The wire
// protocol lives in internal/httpapi and is spoken by the public
// eqasm.Client (Submit/Run/RunStream).
//
// Usage:
//
//	eqasm-serve [-addr :8080] [-topo twoqubit] [-workers N] [-noise] [-seed 1]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eqasm"
	"eqasm/internal/httpapi"
	"eqasm/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	topoName := flag.String("topo", "twoqubit", "chip topology: twoqubit, surface7, surface17, iontrap5, ibmqx2")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "max queued shot batches (0 = default)")
	cacheSize := flag.Int("cache", 0, "assembled-program cache entries (0 = default)")
	batchShots := flag.Int("batch", 0, "shots per worker batch (0 = default)")
	noisy := flag.Bool("noise", false, "use the calibrated noise model instead of an ideal chip")
	seed := flag.Int64("seed", 1, "base random seed")
	drain := flag.Bool("drain", false, "on the first signal, drain before exiting: refuse new submits (healthz turns 503) but keep serving polls until admitted jobs finish")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for admitted jobs while draining (with -drain); a second signal cuts the wait short")
	flag.Parse()

	machine := []eqasm.Option{
		eqasm.WithTopology(*topoName),
		eqasm.WithSeed(*seed),
	}
	if *noisy {
		machine = append(machine, eqasm.WithCalibratedNoise())
	}
	svc, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
		BatchShots: *batchShots,
		Machine:    machine,
	})
	if err != nil {
		log.Fatalf("eqasm-serve: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(svc).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No WriteTimeout: "wait": true responses legitimately span a
		// job's whole run.
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("eqasm-serve: listening on %s (topology %s, %d workers)",
		*addr, *topoName, svc.Stats().Workers)

	select {
	case err := <-errc:
		log.Fatalf("eqasm-serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	// Rolling-restart drain: flip the service to draining while the
	// listener stays up, so routing tiers see the 503 healthz and
	// clients polling admitted jobs still get their results. Only then
	// tear the HTTP server down.
	if *drain {
		log.Print("eqasm-serve: draining (refusing new work, finishing admitted jobs)")
		svc.Drain()
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		sigCtx, sigStop := signal.NotifyContext(dctx, os.Interrupt, syscall.SIGTERM)
		if err := svc.DrainWait(sigCtx); err != nil {
			log.Printf("eqasm-serve: drain cut short: %v", err)
		}
		sigStop()
		dcancel()
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// queue before exiting.
	log.Print("eqasm-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("eqasm-serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("eqasm-serve: drain incomplete (%v), cancelling remaining jobs", err)
		svc.Close()
	}
	log.Print("eqasm-serve: bye")
}
