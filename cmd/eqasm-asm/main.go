// Command eqasm-asm assembles eQASM source into the 32-bit binary of the
// seven-qubit instantiation (Fig. 8), disassembles binaries back to
// source, and prints the instruction-set overview of Table 1 — all
// through the public eqasm package.
//
// Usage:
//
//	eqasm-asm [-topo surface7|twoqubit] [-o out.bin] prog.eqasm
//	eqasm-asm -d prog.bin
//	eqasm-asm -list prog.eqasm
//	eqasm-asm -table1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eqasm"
)

func main() {
	topoName := flag.String("topo", "surface7", "chip topology: "+strings.Join(eqasm.Topologies(), ", "))
	out := flag.String("o", "", "output file (default: stdout hex dump)")
	disasm := flag.Bool("d", false, "disassemble a binary instead of assembling")
	list := flag.Bool("list", false, "print the assembly listing after label resolution")
	table1 := flag.Bool("table1", false, "print the Table 1 instruction overview and exit")
	flag.Parse()

	if *table1 {
		printTable1()
		return
	}
	opts := []eqasm.Option{eqasm.WithTopology(*topoName)}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "eqasm-asm: exactly one input file required")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *disasm {
		text, err := eqasm.Disassemble(data, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}

	prog, err := eqasm.Assemble(string(data), opts...)
	if err != nil {
		fatal(err)
	}
	if *list {
		fmt.Print(prog.Text())
		return
	}
	if *out != "" {
		image, err := prog.Bytes()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, image, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d instructions (%d bytes) to %s\n", len(image)/4, len(image), *out)
		return
	}
	words, err := prog.Words()
	if err != nil {
		fatal(err)
	}
	for i, w := range words {
		fmt.Printf("%4d: %08x\n", i, w)
	}
}

func printTable1() {
	rows := [][2]string{
		{"CMP Rs, Rt", "compare GPRs and set the comparison flags"},
		{"BR <flag>, Offset", "jump to PC + Offset if the flag is 1"},
		{"FBR <flag>, Rd", "fetch a comparison flag into a GPR"},
		{"LDI Rd, Imm", "Rd = sign_ext(Imm[19..0], 32)"},
		{"LDUI Rd, Imm, Rs", "Rd = Imm[14..0]::Rs[16..0]"},
		{"LD Rd, Rt(Imm)", "load from data memory"},
		{"ST Rs, Rt(Imm)", "store to data memory"},
		{"FMR Rd, Qi", "fetch the last measurement result of qubit i"},
		{"AND/OR/XOR Rd, Rs, Rt", "logical operations"},
		{"NOT Rd, Rt", "logical not"},
		{"ADD/SUB Rd, Rs, Rt", "arithmetic"},
		{"QWAIT Imm", "new timing point after Imm cycles"},
		{"QWAITR Rs", "new timing point after GPR-valued cycles"},
		{"SMIS Sd, {qubits}", "set a single-qubit operation target register"},
		{"SMIT Td, {(s,t)...}", "set a two-qubit operation target register"},
		{"[PI,] op [| op]*", "quantum bundle: operations after PI cycles"},
	}
	fmt.Println("eQASM instruction overview (Table 1):")
	for _, r := range rows {
		fmt.Printf("  %-24s %s\n", r[0], r[1])
	}
	fmt.Println("\nconfigured quantum operations (compile-time, Section 3.2):")
	ops, err := eqasm.Operations()
	if err != nil {
		fatal(err)
	}
	for _, op := range ops {
		fmt.Printf("  %-8s opcode %3d  %-8s %2d cycles  flag: %s\n",
			op.Name, op.Opcode, op.Kind, op.DurationCycles, op.CondFlag)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqasm-asm:", err)
	os.Exit(1)
}
