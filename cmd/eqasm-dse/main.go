// Command eqasm-dse regenerates the Fig. 7 design-space exploration:
// instruction counts for the RB, IM and SR benchmarks across the ten
// architecture configurations and VLIW widths 1-4. With -circuit it
// also sweeps a user-provided circuit through the same grid —
// bring-your-own-benchmark over the identical counting pipeline. The
// circuit file is cQASM (.cq/.cqasm) or OpenQASM 2.0 (.qasm), chosen
// by extension.
//
// Usage:
//
//	eqasm-dse [-cliffords N] [-headline]
//	eqasm-dse -circuit workload.cq
//	eqasm-dse -circuit workload.qasm
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"strings"

	"eqasm/internal/benchmarks"
	"eqasm/internal/compiler"
	"eqasm/internal/cqasm"
	"eqasm/internal/dse"
	"eqasm/internal/ir"
	"eqasm/internal/openqasm"
)

func main() {
	cliffords := flag.Int("cliffords", 4096, "Cliffords per qubit in the RB benchmark")
	headline := flag.Bool("headline", false, "also print the paper's quoted comparisons")
	profile := flag.Bool("profile", false, "also print benchmark parallelism and interval profiles")
	qec := flag.Bool("qec", false, "also print the QEC syndrome-extraction SOMQ benefit (Section 4.2 prediction)")
	circuitPath := flag.String("circuit", "", "sweep a circuit file (.cq/.cqasm cQASM or .qasm OpenQASM) through the configuration grid")
	flag.Parse()

	if *circuitPath != "" {
		data, err := os.ReadFile(*circuitPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqasm-dse:", err)
			os.Exit(1)
		}
		// ".cqasm" also ends in ".qasm": check the cQASM extensions first.
		var p *ir.Program
		if !strings.HasSuffix(*circuitPath, ".cq") && !strings.HasSuffix(*circuitPath, ".cqasm") &&
			strings.HasSuffix(*circuitPath, ".qasm") {
			p, err = openqasm.Parse(string(data))
		} else {
			p, err = cqasm.Parse(string(data))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqasm-dse:", err)
			os.Exit(1)
		}
		name := filepath.Base(*circuitPath)
		table, err := dse.ForCircuit(name, compiler.FromIR(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqasm-dse:", err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		s := table.Schedules[name]
		fmt.Printf("%s: %d gates, gates/point=%.2f, length=%d cycles\n",
			name, len(s.Gates), s.ParallelismProfile(), s.LengthCycles)
		return
	}

	if *qec {
		s, err := compiler.ASAP(benchmarks.QEC(20))
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqasm-dse:", err)
			os.Exit(1)
		}
		fmt.Println("QEC syndrome extraction on surface-17 (20 cycles):")
		for _, w := range []int{1, 2} {
			plain, err1 := compiler.Count(s, compiler.Config5.WithWidth(w))
			somq, err2 := compiler.Count(s, compiler.Config9.WithWidth(w))
			if err1 != nil || err2 != nil {
				fmt.Fprintln(os.Stderr, "eqasm-dse:", err1, err2)
				os.Exit(1)
			}
			fmt.Printf("  w=%d: %d -> %d instructions with SOMQ (%.0f%% reduction)\n",
				w, plain.Instructions, somq.Instructions,
				100*(1-float64(somq.Instructions)/float64(plain.Instructions)))
		}
		fmt.Println()
	}

	table, err := dse.Run(*cliffords)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqasm-dse:", err)
		os.Exit(1)
	}
	fmt.Print(table.Render())
	if *headline {
		fmt.Println("-- paper comparisons --")
		for _, line := range table.Headline() {
			fmt.Println(line)
		}
	}
	if *profile {
		fmt.Println("-- benchmark profiles --")
		for _, name := range []string{"RB", "IM", "SR"} {
			s := table.Schedules[name]
			fmt.Printf("%s: gates/point=%.2f length=%d cycles\n", name, s.ParallelismProfile(), s.LengthCycles)
			ih := compiler.IntervalHistogram(s)
			fmt.Printf("  intervals:")
			for _, k := range compiler.SortedKeys(ih) {
				fmt.Printf(" %d:%d", k, ih[k])
			}
			fmt.Println()
		}
	}
}
