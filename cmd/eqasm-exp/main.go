// Command eqasm-exp reruns the Section 5 experiments of the eQASM paper
// on the simulated stack and prints paper-vs-measured summaries.
//
// Usage:
//
//	eqasm-exp [-exp all|allxy|rb|reset|cfc|latency|grover|rabi|t1] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eqasm/internal/experiments"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all, allxy, rb, reset, cfc, latency, grover, rabi, t1, ramsey, iqpe, teleport, scheduling")
	seed := flag.Int64("seed", 2019, "random seed")
	flag.Parse()

	noise := experiments.CalibratedNoise()
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "eqasm-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("allxy", func() error {
		r, err := experiments.RunAllXY(experiments.AllXYOptions{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		fmt.Println("paper: staircase matching expectation (Fig. 11)")
		return nil
	})
	run("rb", func() error {
		r, err := experiments.RunRBTiming(func() experiments.RBTimingOptions {
			o := experiments.DefaultRBTiming()
			o.Noise = noise
			o.Seed = *seed
			return o
		}())
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		fmt.Println("paper (Fig. 12): 0.71 / 0.35 / 0.20 / 0.12 / 0.10 % at 320/160/80/40/20 ns")
		return nil
	})
	run("reset", func() error {
		r, err := experiments.RunReset(experiments.ResetOptions{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("P(|0>) after conditional C_X: %.1f%% (paper: 82.7%%, readout limited)\n", 100*r.P0)
		fmt.Printf("first measurement P(1): %.2f (expect ~0.5); C_X fired in %.1f%% of shots\n",
			r.FirstP1, 100*r.PFlipApplied)
		return nil
	})
	run("cfc", func() error {
		r, err := experiments.RunCFC(experiments.CFCOptions{Rounds: 8})
		if err != nil {
			return err
		}
		fmt.Printf("mock results -> operations: %s\n", strings.Join(r.Ops, " "))
		fmt.Printf("alternation verified: %v (paper: X/Y alternation on the oscilloscope)\n", r.Alternates)
		return nil
	})
	run("latency", func() error {
		r, err := experiments.MeasureLatencies()
		if err != nil {
			return err
		}
		fmt.Printf("fast conditional execution: %d ns (paper: ~92 ns), min wait %d cycles\n",
			r.FastCondNs, r.FastCondMinWaitCycles)
		fmt.Printf("comprehensive feedback control: %d ns (paper: ~316 ns), min wait %d cycles\n",
			r.CFCNs, r.CFCMinWaitCycles)
		return nil
	})
	run("grover", func() error {
		for marked := 0; marked < 4; marked++ {
			r, err := experiments.RunGrover(experiments.GroverOptions{
				Noise: noise, Seed: *seed + int64(marked), Marked: marked,
			})
			if err != nil {
				return err
			}
			fmt.Printf("marked |%02b>: fidelity %.1f%%, success %.1f%%\n",
				marked, 100*r.Fidelity, 100*r.SuccessProb)
		}
		b, err := experiments.RunGroverBudget(noise, *seed, 3)
		if err != nil {
			return err
		}
		fmt.Printf("error budget (marked |11>): full %.1f%%; without CZ error %.1f%%; "+
			"without readout %.1f%%; without decoherence %.1f%%; ideal %.1f%%\n",
			100*b.Full, 100*b.NoCZError, 100*b.NoReadout, 100*b.NoDecoher, 100*b.Ideal)
		fmt.Printf("CZ gate dominates: %v (paper: fidelity 85.6%%, limited by the CZ gate)\n", b.CZDominates)
		return nil
	})
	run("rabi", func() error {
		r, err := experiments.RunRabi(experiments.RabiOptions{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("amplitude points: %d, max deviation from sin^2: %.3f, pi pulse at index %d\n",
			len(r.Points), r.MaxDeviation, r.PiPulseIndex)
		return nil
	})
	run("t1", func() error {
		r, err := experiments.RunT1(experiments.T1Options{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("fitted T1 = %.1f us (chip configured with %.1f us)\n",
			r.FittedT1Ns/1000, noise.T1Ns/1000)
		return nil
	})
	run("ramsey", func() error {
		r, err := experiments.RunRamsey(experiments.RamseyOptions{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("Ramsey fringes over %d delays; fitted T2 = %.1f us (chip configured with %.1f us)\n",
			len(r.Points), r.FittedT2Ns/1000, noise.T2Ns/1000)
		return nil
	})
	run("iqpe", func() error {
		r, err := experiments.RunIQPE(experiments.IQPEOptions{
			Noise: noise, Seed: *seed, Bits: 3, PhaseNumerator: 5, Shots: 400,
		})
		if err != nil {
			return err
		}
		fmt.Printf("3-bit phase estimation of 2*pi*5/8: exact recovery %.0f%%\n", 100*r.SuccessRate)
		fmt.Println("(the paradigm workload of Section 1: CFC + fast-conditional reset + classical arithmetic)")
		return nil
	})
	run("teleport", func() error {
		r, err := experiments.RunTeleport(experiments.TeleportOptions{Seed: *seed, Shots: 300})
		if err != nil {
			return err
		}
		fmt.Printf("teleport X90|0> from data qubit 0 to 1 via ancilla 9 (ideal chip):\n")
		fmt.Printf("  success %.1f%%; Bell branches %v\n", 100*r.SuccessProb, r.CorrectionHistogram)
		noisy, err := experiments.RunTeleport(experiments.TeleportOptions{
			Noise: noise, Seed: *seed, Shots: 600,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  calibrated chip: success %.1f%% (readout + CZ limited)\n", 100*noisy.SuccessProb)
		return nil
	})
	run("scheduling", func() error {
		r, err := experiments.RunSchedulingComparison(experiments.SchedulingOptions{Noise: noise, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("same circuit, same makespan: ASAP fidelity %.4f, ALAP fidelity %.4f\n",
			r.ASAPFidelity, r.ALAPFidelity)
		fmt.Printf("(ALAP delays the early gate by %d cycles; compiler timing optimization per Fig. 12)\n",
			r.IdleGapCycles)
		return nil
	})
}
