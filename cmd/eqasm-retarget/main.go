// Command eqasm-retarget converts an eQASM program between platforms by
// removing its timing information, remapping qubits, rescheduling and
// re-emitting — the cross-platform path the paper's conclusion sketches:
// "by removing the timing information in the eQASM description, the
// quantum semantics of the program can be kept and further converted
// into another executable format targeting another hardware platform."
//
// Usage:
//
//	eqasm-retarget -from twoqubit -to surface17 -map 0:0,2:9 prog.eqasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"eqasm/internal/asm"
	"eqasm/internal/compiler"
	"eqasm/internal/isa"
	"eqasm/internal/topology"
)

func main() {
	from := flag.String("from", "twoqubit", "source topology: twoqubit, surface7, surface17")
	to := flag.String("to", "surface17", "destination topology")
	mapping := flag.String("map", "", "qubit mapping as src:dst pairs, e.g. 0:0,2:9")
	initWait := flag.Int("initwait", 0, "initialisation wait (cycles) for the emitted program")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "eqasm-retarget: exactly one input file required")
		os.Exit(2)
	}
	srcTopo, srcInst := pick(*from)
	dstTopo, dstInst := pick(*to)
	cfg := isa.DefaultConfig()

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a := asm.New(cfg, srcTopo)
	a.Inst = srcInst
	prog, err := a.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	qmap, err := parseMapping(*mapping)
	if err != nil {
		fatal(err)
	}
	dst := &compiler.Emitter{Config: cfg, Topo: dstTopo, Inst: dstInst}
	out, err := compiler.Retarget(prog, cfg, srcTopo, dst, qmap,
		compiler.EmitOptions{SOMQ: true, AppendStop: true, InitWaitCycles: *initWait})
	if err != nil {
		fatal(err)
	}
	d := asm.NewDisassembler(cfg, dstTopo)
	d.Inst = dstInst
	words, err := dstInst.EncodeProgram(out, cfg)
	if err != nil {
		fatal(err)
	}
	text, err := d.Disassemble(words)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# retargeted %s -> %s (%d instructions)\n", *from, *to, len(words))
	fmt.Print(text)
}

func pick(name string) (*topology.Topology, isa.Instantiation) {
	switch name {
	case "twoqubit":
		return topology.TwoQubit(), isa.Default
	case "surface7":
		return topology.Surface7(), isa.Default
	case "surface17":
		return topology.Surface17(), isa.Surface17Instantiation()
	case "iontrap5":
		return topology.IonTrap5(), isa.IonTrap5Instantiation()
	}
	fmt.Fprintf(os.Stderr, "eqasm-retarget: unknown topology %q\n", name)
	os.Exit(2)
	return nil, isa.Instantiation{}
}

func parseMapping(s string) (map[int]int, error) {
	out := map[int]int{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		parts := strings.Split(pair, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed mapping entry %q", pair)
		}
		src, err1 := strconv.Atoi(parts[0])
		dst, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed mapping entry %q", pair)
		}
		out[src] = dst
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqasm-retarget:", err)
	os.Exit(1)
}
