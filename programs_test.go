// Golden-program tests: every .eqasm file shipped under
// testdata/programs assembles, encodes, disassembles back to the same
// binary, and executes with its documented outcome.
package eqasm_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eqasm/internal/asm"
	"eqasm/internal/core"
	"eqasm/internal/microarch"
)

func loadProgramFile(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "programs", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// All shipped programs assemble and round-trip through the binary.
func TestShippedProgramsRoundTrip(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected shipped programs, found %d", len(entries))
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			src := loadProgramFile(t, e.Name())
			opts := applyFixtureTopo(t, core.Options{}, fixtureTopo(src))
			sys, err := core.NewSystem(opts)
			if err != nil {
				t.Fatal(err)
			}
			d := asm.NewDisassembler(sys.OpConfig, sys.Topo)
			words, err := sys.Binary(src)
			if err != nil {
				if strings.Contains(err.Error(), "no 32-bit encoding") {
					// Literal-angle rotations are an assembly-level
					// feature: the eQASM binary format binds fixed
					// rotations through the microcode instantiation, so
					// these fixtures have no binary image to round-trip.
					t.Skip("fixture uses literal-angle rotations (assembly-only)")
				}
				t.Fatalf("assemble: %v", err)
			}
			text, err := d.Disassemble(words)
			if err != nil {
				t.Fatalf("disassemble: %v", err)
			}
			words2, err := sys.Binary(text)
			if err != nil {
				t.Fatalf("reassemble: %v", err)
			}
			for i := range words {
				if words[i] != words2[i] {
					t.Fatalf("binary fixpoint broken at word %d", i)
				}
			}
		})
	}
}

func TestBellProgram(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(loadProgramFile(t, "bell.eqasm")); err != nil {
		t.Fatal(err)
	}
	agree, ones := 0, 0
	const shots = 300
	err = sys.RunShots(shots, func(_ int, m *microarch.Machine) {
		bits := map[int]int{}
		for _, r := range m.Measurements() {
			bits[r.Qubit] = r.Result
		}
		if bits[0] == bits[2] {
			agree++
		}
		ones += bits[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if agree != shots {
		t.Fatalf("Bell correlations broken: %d/%d agree", agree, shots)
	}
	if p := float64(ones) / shots; math.Abs(p-0.5) > 0.1 {
		t.Fatalf("Bell marginal = %v, want ~0.5", p)
	}
}

func TestActiveResetProgram(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(loadProgramFile(t, "active_reset.eqasm")); err != nil {
		t.Fatal(err)
	}
	err = sys.RunShots(100, func(shot int, m *microarch.Machine) {
		recs := m.Measurements()
		if len(recs) != 2 || recs[1].Result != 0 {
			t.Fatalf("shot %d: reset failed (%+v)", shot, recs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCFCProgram(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Seed: 2, RecordDeviceOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunAssembly(loadProgramFile(t, "cfc.eqasm")); err != nil {
		t.Fatal(err)
	}
	// Qubit 2 was prepared |1>: the EQ path must fire, applying Y to
	// qubit 0, so the final measurement of qubit 0 reads 1.
	recs := sys.Machine.Measurements()
	if len(recs) != 2 {
		t.Fatalf("measurements: %+v", recs)
	}
	if recs[1].Qubit != 0 || recs[1].Result != 1 {
		t.Fatalf("CFC path wrong: %+v", recs)
	}
}

func TestLoopProgram(t *testing.T) {
	sys, err := core.NewSystem(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunAssembly(loadProgramFile(t, "loop.eqasm")); err != nil {
		t.Fatal(err)
	}
	// Two X gates return the qubit to |0>.
	recs := sys.Machine.Measurements()
	if len(recs) != 1 || recs[0].Result != 0 {
		t.Fatalf("double flip failed: %+v", recs)
	}
	// The loop count is published through the data memory.
	v, err := sys.Machine.ReadWord(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("loop count = %d, want 2", v)
	}
}
