// The job-service Client implements the same Backend interface as the
// in-process Simulator: these tests run it against a real service
// behind the real HTTP front end.
package eqasm_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"eqasm"
	"eqasm/internal/httpapi"
	"eqasm/internal/service"
)

func newServiceClient(t *testing.T, cfg service.Config, copts ...eqasm.ClientOption) *eqasm.Client {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	copts = append([]eqasm.ClientOption{
		eqasm.WithHTTPClient(ts.Client()),
		// Fast polling keeps the Run/Wait round trips snappy in tests.
		eqasm.WithPollInterval(2 * time.Millisecond),
	}, copts...)
	return eqasm.NewClient(ts.URL, copts...)
}

func TestClientRunBell(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers:    2,
		BatchShots: 16,
		Machine:    []eqasm.Option{eqasm.WithSeed(4)},
	})
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	const shots = 100
	res, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: shots})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != shots {
		t.Fatalf("ran %d shots, want %d", res.Shots, shots)
	}
	total := 0
	for key, n := range res.Histogram {
		if key != "00" && key != "11" {
			t.Fatalf("uncorrelated outcome %q", key)
		}
		total += n
	}
	if total != shots {
		t.Fatalf("histogram sums to %d", total)
	}
	if len(res.Qubits) != 2 || res.Qubits[0] != 0 || res.Qubits[1] != 2 {
		t.Fatalf("qubits = %v, want [0 2]", res.Qubits)
	}
	// Duration maps from the wire's run_ns — a zero here means the
	// client's hand-mirrored wire struct drifted from the service's
	// JSON tags.
	if res.Duration <= 0 {
		t.Fatalf("duration = %v, want > 0 (wire-field drift?)", res.Duration)
	}
	// The noiseless Clifford Bell program auto-routes to the tableau
	// remotely too, and the resolved backend travels back on the wire.
	if res.Backend != eqasm.BackendStabilizer {
		t.Fatalf("backend = %q, want %q (wire-field drift?)", res.Backend, eqasm.BackendStabilizer)
	}
	// A forced backend travels outward on the wire as well.
	res, err = client.Run(context.Background(), prog, eqasm.RunOptions{
		Shots: 1, Backend: eqasm.BackendStateVector,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != eqasm.BackendStateVector {
		t.Fatalf("forced backend = %q, want %q", res.Backend, eqasm.BackendStateVector)
	}
	if _, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: -1}); err == nil {
		t.Fatal("negative shot count accepted")
	}
}

// RunStream returns its channel immediately (the Backend contract the
// Simulator sets); the remote job runs behind the stream, not before
// it.
func TestClientRunStreamReturnsImmediately(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers: 1,
		Machine: []eqasm.Option{eqasm.WithSeed(4)},
	})
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	const shots = 100_000 // a meaningful stretch of work on the service
	start := time.Now()
	stream, err := client.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: shots})
	if err != nil {
		t.Fatal(err)
	}
	callElapsed := time.Since(start)
	n := 0
	for sr := range stream {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		n++
	}
	if n != shots {
		t.Fatalf("streamed %d shots, want %d", n, shots)
	}
	// The call itself does no I/O; if it blocked for a meaningful
	// fraction of the job's total runtime, the old run-then-return
	// behavior regressed. A ratio keeps the assertion robust under
	// load on slow CI boxes.
	total := time.Since(start)
	if callElapsed > total/4 {
		t.Fatalf("RunStream blocked %v of the job's %v before returning its channel", callElapsed, total)
	}
}

// A compiled circuit (no source text) submits via its disassembly,
// which the service assembles back to the same program.
func TestClientRunCompiledProgram(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers: 2,
		Machine: []eqasm.Option{eqasm.WithSeed(9)},
	})
	prog, err := eqasm.Compile(&eqasm.Circuit{
		NumQubits: 1,
		Gates: []eqasm.Gate{
			{Name: "X", Qubits: []int{0}},
			{Name: "MEASZ", Qubits: []int{0}, Measure: true},
		},
	}, eqasm.WithInitWaitCycles(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram["1"] != 10 {
		t.Fatalf("X|0> histogram = %v, want all \"1\"", res.Histogram)
	}
}

func TestClientRunStreamReplaysHistogram(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers: 2,
		Machine: []eqasm.Option{eqasm.WithSeed(4)},
	})
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	const shots = 40
	stream, err := client.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: shots})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sr := range stream {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Key != "00" && sr.Key != "11" {
			t.Fatalf("uncorrelated outcome %q", sr.Key)
		}
		if len(sr.Measurements) != 2 {
			t.Fatalf("measurements = %v", sr.Measurements)
		}
		n++
	}
	if n != shots {
		t.Fatalf("streamed %d shots, want %d", n, shots)
	}
}

// Cancelling mid-replay delivers the terminal error instead of a clean
// close that would masquerade as completion.
func TestClientRunStreamCancellationDeliversError(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers: 2,
		Machine: []eqasm.Option{eqasm.WithSeed(4)},
	})
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := client.RunStream(ctx, prog, eqasm.RunOptions{Shots: 50})
	if err != nil {
		t.Fatal(err)
	}
	var terminal error
	n := 0
	for sr := range stream {
		if sr.Err != nil {
			terminal = sr.Err
			break
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	for range stream {
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal err = %v after %d shots, want context.Canceled", terminal, n)
	}
}

func TestClientRejectsChipMismatch(t *testing.T) {
	client := newServiceClient(t, service.Config{Workers: 1})
	// Qubit 5 exists on surface7 but not on the service's twoqubit
	// chip: rejected.
	prog, err := eqasm.Assemble("SMIS S0, {5}\nX S0\nSTOP", eqasm.WithTopology("surface7"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(context.Background(), prog, eqasm.RunOptions{Shots: 1}); err == nil {
		t.Fatal("service accepted a program for the wrong chip")
	}
	// The dangerous case: the program's qubits also exist on the
	// service's chip, so it would assemble and run there — under the
	// wrong topology semantics. The chip binding must still reject it.
	overlap, err := eqasm.Assemble("SMIS S0, {0}\nX S0\nMEASZ S0\nSTOP", eqasm.WithTopology("surface7"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(context.Background(), overlap, eqasm.RunOptions{Shots: 1}); err == nil {
		t.Fatal("service silently ran a program bound to a different chip")
	}
	// Negative seeds would break per-batch seed derivation; rejected.
	twoq, err := eqasm.Assemble("SMIS S0, {0}\nX S0\nSTOP")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(context.Background(), twoq, eqasm.RunOptions{Shots: 1, Seed: -7}); err == nil {
		t.Fatal("service accepted a negative seed")
	}
}

func TestClientSubmitPollCancel(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers:    1,
		QueueDepth: 100000,
		BatchShots: 8,
		Machine:    []eqasm.Option{eqasm.WithSeed(3)},
	}, eqasm.WithPollInterval(5*time.Millisecond))
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	job, err := client.Submit(ctx, eqasm.RunRequest{
		Program: prog,
		Options: eqasm.RunOptions{Shots: 500000},
		Tag:     "long",
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == "" {
		t.Fatal("submitted job has no ID")
	}
	select {
	case <-job.Done():
		t.Fatal("500k-shot job done at submit time")
	default:
	}
	if _, err := job.Results(); err != eqasm.ErrJobNotDone {
		t.Fatalf("Results before completion: %v, want ErrJobNotDone", err)
	}
	job.Cancel()
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err = job.Wait(waitCtx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Cancel: %v, want context.Canceled", err)
	}
	if st := job.Status(); st != eqasm.JobCancelled {
		t.Fatalf("status = %q, want cancelled", st)
	}
	reqs := job.Requests()
	if len(reqs) != 1 || reqs[0].Tag != "long" || reqs[0].State != eqasm.JobCancelled {
		t.Fatalf("request statuses = %+v", reqs)
	}

	// Stats reflect the traffic.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsSubmitted != 1 || st.JobsCancelled != 1 || st.RequestsSubmitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Both Backend implementations satisfy the interface and can be swapped
// behind it.
func TestBackendsAreInterchangeable(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	client := newServiceClient(t, service.Config{
		Workers: 2,
		Machine: []eqasm.Option{eqasm.WithSeed(4)},
	})
	prog, err := eqasm.Assemble(shippedPrograms(t)["active_reset.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []eqasm.Backend{sim, client} {
		res, err := backend.Run(context.Background(), prog, eqasm.RunOptions{Shots: 25})
		if err != nil {
			t.Fatal(err)
		}
		// Active reset always restores |0> on the ideal chip.
		if res.Histogram["0"] != 25 {
			t.Fatalf("%T histogram = %v", backend, res.Histogram)
		}
	}
}
