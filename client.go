package eqasm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Client is the job-service Backend: it submits programs to a running
// eqasm-serve instance over its HTTP API (POST /v1/jobs and friends)
// and maps job results back onto the same Result type the in-process
// Simulator produces. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

var _ Backend = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the http.Client used for requests
// (timeouts, transports, instrumentation).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// RemoteJob describes a job on the service.
type RemoteJob struct {
	// ID addresses the job in Job and Cancel calls.
	ID string
	// State is "queued", "running", "completed", "failed" or
	// "cancelled".
	State string
	// Result is the aggregate outcome once the job finished.
	Result *Result
	// Err is the failure or cancellation message of a finished job.
	Err string
}

// Done reports whether the job reached a terminal state.
func (j *RemoteJob) Done() bool {
	return j.State == "completed" || j.State == "failed" || j.State == "cancelled"
}

// jobRequest mirrors the service's POST /v1/jobs payload.
type jobRequest struct {
	Source string `json:"source,omitempty"`
	Shots  int    `json:"shots,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Chip   string `json:"chip,omitempty"`
	Wait   bool   `json:"wait,omitempty"`
}

// jobResponse mirrors the service's job description.
type jobResponse struct {
	ID     string      `json:"id"`
	Status string      `json:"status"`
	Result *resultWire `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

type resultWire struct {
	Shots     int            `json:"shots"`
	Histogram map[string]int `json:"histogram"`
	Qubits    []int          `json:"qubits,omitempty"`
	RunNs     int64          `json:"run_ns"`
}

func (r *resultWire) toResult() *Result {
	if r == nil {
		return nil
	}
	hist := r.Histogram
	if hist == nil {
		hist = map[string]int{}
	}
	return &Result{
		Shots:     r.Shots,
		Histogram: hist,
		Qubits:    r.Qubits,
		Duration:  time.Duration(r.RunNs),
	}
}

// wireSource renders a program for submission: the original source
// when available, otherwise the round-trip-stable disassembly.
func wireSource(p *Program) (string, error) {
	if p.source != "" {
		return p.source, nil
	}
	return p.Disassemble()
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("eqasm: service: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("eqasm: service: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) submit(ctx context.Context, p *Program, opts RunOptions, wait bool) (*jobResponse, error) {
	if opts.Shots < 0 {
		return nil, fmt.Errorf("eqasm: negative shot count %d", opts.Shots)
	}
	src, err := wireSource(p)
	if err != nil {
		return nil, err
	}
	shots := opts.Shots
	if shots == 0 {
		shots = 1
	}
	// The program's bound chip travels with the request, so a program
	// assembled for one topology cannot silently execute under another
	// chip's semantics on a mismatched service.
	var jr jobResponse
	err = c.do(ctx, http.MethodPost, "/v1/jobs", jobRequest{
		Source: src,
		Shots:  shots,
		Seed:   opts.Seed,
		Chip:   p.Chip(),
		Wait:   wait,
	}, &jr)
	if err != nil {
		return nil, err
	}
	return &jr, nil
}

func (jr *jobResponse) toJob() *RemoteJob {
	return &RemoteJob{ID: jr.ID, State: jr.Status, Result: jr.Result.toResult(), Err: jr.Error}
}

// Run implements Backend: it submits the program synchronously and
// returns the aggregated histogram. RunOptions.Workers is ignored (the
// service owns its own fan-out).
func (c *Client) Run(ctx context.Context, p *Program, opts RunOptions) (*Result, error) {
	jr, err := c.submit(ctx, p, opts, true)
	if err != nil {
		return nil, err
	}
	job := jr.toJob()
	if job.State != "completed" {
		msg := job.Err
		if msg == "" {
			msg = "job " + job.State
		}
		return job.Result, fmt.Errorf("eqasm: service job %s: %s", job.ID, msg)
	}
	if job.Result == nil {
		return nil, fmt.Errorf("eqasm: service job %s: completed without a result", job.ID)
	}
	return job.Result, nil
}

// RunStream implements Backend. The service aggregates shots into a
// histogram rather than streaming them, so the channel stays silent
// while the job runs remotely and then replays the finished histogram:
// one ShotResult per executed shot, grouped by outcome in key order
// (per-shot completion order is not preserved). Like the Simulator's
// stream, the call returns immediately; a failure delivers one final
// ShotResult with Err set.
func (c *Client) RunStream(ctx context.Context, p *Program, opts RunOptions) (<-chan ShotResult, error) {
	if opts.Shots < 0 {
		return nil, fmt.Errorf("eqasm: negative shot count %d", opts.Shots)
	}
	ch := make(chan ShotResult)
	go func() {
		defer close(ch)
		res, err := c.Run(ctx, p, opts)
		shot := 0
		if res != nil {
			keys := make([]string, 0, len(res.Histogram))
			for k := range res.Histogram {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				for n := res.Histogram[key]; n > 0; n-- {
					sr := ShotResult{Shot: shot, Key: key}
					// Reconstruct measurement records only when the key
					// unambiguously covers the result's qubit list; a
					// program whose control flow measures different qubit
					// sets per shot yields shorter keys, and fabricating
					// zero-valued records for never-measured qubits would
					// be indistinguishable from real outcomes.
					if len(key) == len(res.Qubits) {
						for i, q := range res.Qubits {
							bit := 0
							if key[i] == '1' {
								bit = 1
							}
							sr.Measurements = append(sr.Measurements, Measurement{Qubit: q, Result: bit})
						}
					}
					select {
					case ch <- sr:
					case <-ctx.Done():
						sendTerminal(ch, ShotResult{Shot: -1, Err: context.Cause(ctx)})
						return
					}
					shot++
				}
			}
		}
		if err != nil {
			sendTerminal(ch, ShotResult{Shot: -1, Err: err})
		}
	}()
	return ch, nil
}

// Submit enqueues the program asynchronously and returns the job
// ticket; poll with Job or cancel with Cancel.
func (c *Client) Submit(ctx context.Context, p *Program, opts RunOptions) (*RemoteJob, error) {
	jr, err := c.submit(ctx, p, opts, false)
	if err != nil {
		return nil, err
	}
	return jr.toJob(), nil
}

// Job fetches a job's current state and, once finished, its result.
func (c *Client) Job(ctx context.Context, id string) (*RemoteJob, error) {
	var jr jobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &jr); err != nil {
		return nil, err
	}
	return jr.toJob(), nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// ServiceStats is a point-in-time snapshot of the service counters.
type ServiceStats struct {
	Workers       int     `json:"workers"`
	WorkersBusy   int     `json:"workers_busy"`
	QueueDepth    int     `json:"queue_depth"`
	JobsSubmitted int64   `json:"jobs_submitted"`
	JobsActive    int64   `json:"jobs_active"`
	JobsCompleted int64   `json:"jobs_completed"`
	JobsFailed    int64   `json:"jobs_failed"`
	JobsCancelled int64   `json:"jobs_cancelled"`
	JobsRejected  int64   `json:"jobs_rejected"`
	ShotsExecuted int64   `json:"shots_executed"`
	BatchesRun    int64   `json:"batches_run"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}
