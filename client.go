package eqasm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client is the job-service Backend: it submits batches of programs to
// a running eqasm-serve instance over its HTTP API (POST /v1/batches
// and friends) and maps the per-request results back onto the same
// Result and Job types the in-process Simulator produces. Safe for
// concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	poll    time.Duration
	retries int
	backoff time.Duration
}

var _ Backend = (*Client)(nil)

// defaultPollInterval paces the job poll loop when WithPollInterval is
// not given.
const defaultPollInterval = 25 * time.Millisecond

// maxPollFailures bounds consecutive poll errors before a job is
// declared failed (a dead or unreachable server must not hang Wait
// forever).
const maxPollFailures = 10

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the http.Client used for requests
// (timeouts, transports, instrumentation).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval sets the pacing of the remote-job poll loop behind
// Job.Wait and the streams (default 25ms). Shorten it for fast tests,
// stretch it for slow servers or long-running sweeps; values <= 0 keep
// the default.
func WithPollInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// defaultRetryBackoff is the first retry delay when WithRetry is given
// without one.
const defaultRetryBackoff = 50 * time.Millisecond

// WithRetry makes every request retry transient connection failures —
// errors raised before the request reached the server, such as a
// refused or unreachable connection — up to retries additional
// attempts, with exponential backoff starting at base (default 50ms;
// values <= 0 keep the defaults) and ±50% jitter so a fleet of clients
// does not reconnect in lockstep. Only never-sent requests are retried,
// so a submit cannot be duplicated; a server that accepted the request
// and then failed surfaces its error unretried. This is what lets a
// routing tier ride out a worker restart, and what lets a CLI outlive
// a briefly unreachable service.
func WithRetry(retries int, base time.Duration) ClientOption {
	return func(c *Client) {
		if retries > 0 {
			c.retries = retries
		}
		if base > 0 {
			c.backoff = base
		}
	}
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		poll:    defaultPollInterval,
		backoff: defaultRetryBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// requestWire mirrors one request of the service's POST /v1/batches
// payload.
type requestWire struct {
	Source  string             `json:"source,omitempty"`
	Shots   int                `json:"shots,omitempty"`
	Seed    int64              `json:"seed,omitempty"`
	Tag     string             `json:"tag,omitempty"`
	Chip    string             `json:"chip,omitempty"`
	Backend string             `json:"backend,omitempty"`
	Fusion  string             `json:"fusion,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

// batchRequestWire mirrors the service's POST /v1/batches payload.
type batchRequestWire struct {
	Requests []requestWire `json:"requests"`
	// Wait makes the POST synchronous: the response carries the
	// terminal batch description, so no status polls are needed (the
	// Run fast path).
	Wait bool `json:"wait,omitempty"`
}

// batchResponseWire mirrors the service's batch description.
type batchResponseWire struct {
	ID       string              `json:"id"`
	Status   string              `json:"status"`
	Error    string              `json:"error,omitempty"`
	Requests []requestStatusWire `json:"requests"`
}

// requestStatusWire mirrors one request's status and (once finished)
// outcome on the wire: the flat service.RequestResult JSON shape.
type requestStatusWire struct {
	Index      int            `json:"index"`
	Tag        string         `json:"tag,omitempty"`
	Status     string         `json:"status"`
	Error      string         `json:"error,omitempty"`
	Shots      int            `json:"shots"`
	Histogram  map[string]int `json:"histogram,omitempty"`
	Qubits     []int          `json:"qubits,omitempty"`
	Stats      ExecStats      `json:"stats"`
	TotalStats ExecStats      `json:"total_stats"`
	Backend    string         `json:"backend,omitempty"`
	RunNs      int64          `json:"run_ns"`
}

func (r *requestStatusWire) toResult() *Result {
	hist := r.Histogram
	if hist == nil {
		hist = map[string]int{}
	}
	return &Result{
		Shots:      r.Shots,
		Histogram:  hist,
		Qubits:     r.Qubits,
		Stats:      r.Stats,
		TotalStats: r.TotalStats,
		Backend:    r.Backend,
		Duration:   time.Duration(r.RunNs),
	}
}

// wireSource renders a program for submission: the original source
// when available, otherwise the round-trip-stable disassembly.
// Parametric programs have no 32-bit encoding to disassemble from, so
// they ship as the assembly rendering instead (which round-trips
// their %name angle operands through the assembler).
func wireSource(p *Program) (string, error) {
	if p.source != "" {
		return p.source, nil
	}
	if s, err := p.Disassemble(); err == nil {
		return s, nil
	}
	return p.renderSource()
}

// ServiceError is a non-2xx HTTP response from the service, carrying
// the status code alongside the service's error message so callers can
// distinguish backpressure (503: queue full, draining) from rejection
// (400) without parsing strings.
type ServiceError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Message is the service's error message, if it sent one.
	Message string
}

func (e *ServiceError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("eqasm: service: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("eqasm: service: HTTP %d", e.StatusCode)
}

// retryableError reports whether err happened before the request
// reached the server — the only failures safe to retry blind, since
// nothing was submitted. In practice that is a failed dial (refused,
// unreachable, no route); an error on an established connection could
// mean the server acted on the request before dying.
func retryableError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, data, out)
		if err == nil || attempt >= c.retries || !retryableError(err) {
			return err
		}
		// Exponential backoff with ±50% jitter; bail out early when the
		// caller's ctx expires mid-wait.
		d := c.backoff << attempt
		d = d/2 + rand.N(d)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// doOnce performs a single attempt; the body bytes are marshaled once
// by do and a fresh reader is built per attempt, so retries never send
// a drained body.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		se := &ServiceError{StatusCode: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			se.Message = e.Error
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit implements Backend: it posts the whole batch as one
// /v1/batches job — one queue admission, one program-cache pass and one
// HTTP round-trip for N programs — and returns a Job handle driven by a
// poll loop (pace it with WithPollInterval). Each request honors its
// own shots and seed exactly as an individual Run would;
// RunOptions.Workers is ignored (the service owns its fan-out). The
// job is bound to ctx: a ctx that expires while the batch is queued or
// running cancels it remotely.
func (c *Client) Submit(ctx context.Context, reqs ...RunRequest) (*Job, error) {
	return c.submitJob(ctx, false, false, reqs)
}

// submitJob posts the batch and starts the handle's driver. With wait
// set the POST itself blocks until the batch finishes and its response
// settles the job without a single status poll.
func (c *Client) submitJob(ctx context.Context, streaming, wait bool, reqs []RunRequest) (*Job, error) {
	ctx, err := normalizeBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	wire := batchRequestWire{Requests: make([]requestWire, len(reqs)), Wait: wait}
	for i, r := range reqs {
		if r.Options.Shots < 0 {
			return nil, fmt.Errorf("eqasm: negative shot count %d", r.Options.Shots)
		}
		src, err := wireSource(r.Program)
		if err != nil {
			return nil, err
		}
		// The program's bound chip travels with each request, so a
		// program assembled for one topology cannot silently execute
		// under another chip's semantics on a mismatched service.
		wire.Requests[i] = requestWire{
			Source:  src,
			Shots:   r.Options.Shots,
			Seed:    r.Options.Seed,
			Tag:     r.Tag,
			Chip:    r.Program.Chip(),
			Backend: r.Options.Backend,
			Fusion:  r.Options.Fusion,
			Params:  r.params(),
		}
	}
	var br batchResponseWire
	if err = c.do(ctx, http.MethodPost, "/v1/batches", wire, &br); err != nil {
		return nil, err
	}
	job := newJob(br.ID, reqs)
	if streaming {
		job.streaming.Store(true)
	}
	pctx, cancel := context.WithCancelCause(ctx)
	// Cancel delivers the cancellation to the service; the poll loop
	// (and its ctx) stays live so the confirming poll can observe the
	// terminal state the server settles on.
	job.cancelHook = func() { go c.cancelBatch(br.ID) }
	go c.pollJob(pctx, cancel, job, br.ID, br)
	return job, nil
}

// cancelBatch best-effort-cancels a remote batch.
func (c *Client) cancelBatch(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = c.do(ctx, http.MethodDelete, "/v1/batches/"+id, nil, nil)
}

// pollJob drives a remote job to completion: it polls the batch
// endpoint, mirrors per-request states onto the handle, replays each
// request's histogram to an attached stream as the request completes,
// and finalizes when the server reports a terminal state (or after
// maxPollFailures consecutive errors, or when ctx is cancelled — which
// also cancels the batch remotely). The submit response seeds the loop:
// a synchronous (wait) submit settles the whole job from it, with no
// polls at all.
func (c *Client) pollJob(ctx context.Context, cancel context.CancelCauseFunc, job *Job, id string,
	submitted batchResponseWire) {
	defer cancel(nil)
	seen := make([]bool, len(job.reqs))
	if c.applyPoll(ctx, job, submitted, seen) {
		job.finalize()
		return
	}
	fails := 0
	t := time.NewTimer(c.poll) // the submit response just told us the state; wait one beat
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			cause := context.Cause(ctx)
			job.Cancel() // delivers the cancellation remotely (once)
			job.emitTerminal(c.firstUnseen(seen), cause, terminalGrace)
			job.stopRemaining(0, cause)
			job.finalize()
			return
		}
		var br batchResponseWire
		err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &br)
		if err != nil {
			if ctx.Err() != nil {
				continue // the ctx branch above handles it on the next spin
			}
			if fails++; fails >= maxPollFailures {
				err = fmt.Errorf("eqasm: service job %s unreachable: %w", id, err)
				job.emitTerminal(c.firstUnseen(seen), err, terminalGrace)
				job.stopRemaining(0, err)
				job.finalize()
				return
			}
			t.Reset(c.poll)
			continue
		}
		fails = 0
		terminal := c.applyPoll(ctx, job, br, seen)
		if terminal {
			job.finalize()
			return
		}
		t.Reset(c.poll)
	}
}

// firstUnseen picks the request index a batch-level terminal message is
// attributed to.
func (c *Client) firstUnseen(seen []bool) int {
	for i, s := range seen {
		if !s {
			return i
		}
	}
	return 0
}

// applyPoll mirrors one poll's batch description onto the job handle
// and reports whether the batch reached a terminal state with every
// request accounted for.
func (c *Client) applyPoll(ctx context.Context, job *Job, br batchResponseWire, seen []bool) bool {
	done := true
	for _, rw := range br.Requests {
		if rw.Index < 0 || rw.Index >= len(seen) || seen[rw.Index] {
			continue
		}
		switch JobState(rw.Status) {
		case JobRunning:
			job.markRunning(rw.Index)
			done = false
		case JobCompleted, JobFailed, JobCancelled:
			seen[rw.Index] = true
			res := rw.toResult()
			var reqErr error
			switch {
			case JobState(rw.Status) == JobCancelled:
				reqErr = context.Canceled
			case JobState(rw.Status) == JobFailed:
				msg := rw.Error
				if msg == "" {
					msg = "request failed"
				}
				reqErr = fmt.Errorf("eqasm: service job %s request %d: %s", job.id, rw.Index, msg)
			}
			if reqErr == nil {
				if err := c.replay(ctx, job, rw.Index, res); err != nil {
					// ctx cancelled mid-replay: the remote data is
					// complete, but the caller abandoned the job — end
					// it as cancelled with a terminal stream message.
					job.finishRequest(rw.Index, res, err)
					job.Cancel() // the remote batch must not keep running
					job.emitTerminal(rw.Index, err, terminalGrace)
					job.stopRemaining(0, err)
					return true
				}
			} else {
				job.emitTerminal(rw.Index, reqErr, siblingGrace)
			}
			job.finishRequest(rw.Index, res, reqErr)
		default: // queued
			done = false
		}
	}
	if !done {
		return false
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// replay delivers a completed request's histogram to an attached
// stream consumer (see replayHistogram in controller.go, shared with
// externally driven jobs).
func (c *Client) replay(ctx context.Context, job *Job, req int, res *Result) error {
	return replayHistogram(ctx, job, req, res)
}

// Run implements Backend as sugar over Submit: a one-request batch,
// awaited — submitted synchronously (the wire's wait flag), so a run
// is a single HTTP round-trip with no poll latency. RunOptions.Workers
// is ignored (the service owns its own fan-out).
func (c *Client) Run(ctx context.Context, p *Program, opts RunOptions) (*Result, error) {
	job, err := c.submitJob(ctx, false, true, []RunRequest{{Program: p, Options: opts}})
	if err != nil {
		return nil, err
	}
	return awaitFirst(job)
}

// RunStream implements Backend as sugar over Submit with the stream
// attached up front. The service aggregates shots into a histogram
// rather than streaming them, so the channel stays silent while the
// job runs remotely and then replays the finished histogram: one
// ShotResult per executed shot, grouped by outcome in key order. Like
// the Simulator's stream, the call returns immediately (the submit
// round-trip happens behind the stream); a failure delivers one final
// ShotResult with Err set.
func (c *Client) RunStream(ctx context.Context, p *Program, opts RunOptions) (<-chan ShotResult, error) {
	if opts.Shots < 0 {
		return nil, fmt.Errorf("eqasm: negative shot count %d", opts.Shots)
	}
	if p == nil {
		return nil, fmt.Errorf("eqasm: request 0 has no program")
	}
	ch := make(chan ShotResult)
	go func() {
		defer close(ch)
		// Synchronous submit here too: the terminal response feeds the
		// replay directly, with no poll round-trips behind the stream.
		job, err := c.submitJob(ctx, true, true, []RunRequest{{Program: p, Options: opts}})
		if err != nil {
			sendTerminal(ch, ShotResult{Shot: -1, Err: err}, terminalGrace)
			return
		}
		for sr := range job.Stream() {
			select {
			case ch <- sr:
			case <-ctx.Done():
				// Consumer-side cancellation: stop the remote job and
				// hand over the terminal message; the poll loop drains
				// the job channel on its own ctx.
				job.Cancel()
				sendTerminal(ch, ShotResult{Shot: -1, Err: context.Cause(ctx)}, terminalGrace)
				return
			}
		}
	}()
	return ch, nil
}

// ServiceStats is a point-in-time snapshot of the service counters.
type ServiceStats struct {
	Workers     int `json:"workers"`
	WorkersBusy int `json:"workers_busy"`
	QueueDepth  int `json:"queue_depth"`
	// QueueCapacity is the queue's slot bound — with QueueDepth, the
	// load signal a routing tier uses to spill work elsewhere before
	// submits start bouncing off the full queue.
	QueueCapacity int `json:"queue_capacity"`
	// InflightShots counts shots currently executing on the workers.
	InflightShots int64 `json:"inflight_shots"`
	// Draining reports the service has stopped accepting new work and
	// is finishing what it admitted (rolling-restart drain).
	Draining          bool  `json:"draining,omitempty"`
	JobsSubmitted     int64 `json:"jobs_submitted"`
	JobsActive        int64 `json:"jobs_active"`
	JobsCompleted     int64 `json:"jobs_completed"`
	JobsFailed        int64 `json:"jobs_failed"`
	JobsCancelled     int64 `json:"jobs_cancelled"`
	JobsRejected      int64 `json:"jobs_rejected"`
	RequestsSubmitted int64 `json:"requests_submitted"`
	BatchJobs         int64 `json:"batch_jobs"`
	ShotsExecuted     int64 `json:"shots_executed"`
	StabilizerShots   int64 `json:"stabilizer_shots"`
	BatchesRun        int64 `json:"batches_run"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheEntries      int   `json:"cache_entries"`
	// PlanCacheHits/Misses count decode-once execution-plan reuse —
	// the warmth signal content-hash affinity routing is designed to
	// maximize on each worker.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// GateProfile aggregates executed kernel work across all batches:
	// per-shot kernel applications per kind — including fused.* kernel
	// kinds and fusion.* site counters on fused runs — weighted by
	// shots.
	GateProfile   map[string]int64 `json:"gate_profile,omitempty"`
	UptimeSeconds float64          `json:"uptime_seconds"`
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}
