// GHZ-1024: a Greenberger–Horne–Zeilinger state over 1024 qubits,
// executed end to end through the public Simulator. A 1024-qubit state
// vector would need 2^1024 amplitudes, but the circuit is pure Clifford
// (H + a CNOT chain + Z measurements), so backend auto-selection routes
// it to the Gottesman–Knill stabilizer tableau, which runs it in
// milliseconds. Every shot collapses all 1024 qubits to the same random
// bit: the histogram holds only the all-zeros and all-ones keys.
//
// The chain1024 topology is one of the built-in chain<N> families
// (linear nearest-neighbour couplings); its instantiation widens the
// SMIS/SMIT mask registers far beyond the 32-bit encodable range, so
// the program runs through the assembler/plan path rather than the
// binary encoding.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"eqasm"
)

const numQubits = 1024

// source renders the GHZ circuit as eQASM assembly: H on qubit 0, a
// CNOT chain spreading the superposition down the line (each CNOT two
// cycles after the previous one, matching the two-qubit gate
// duration), and one wide MEASZ over every qubit.
func source() string {
	var b strings.Builder
	b.WriteString("SMIS S0, {0}\n")
	b.WriteString("SMIS S1, {")
	for i := 0; i < numQubits; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteString("}\n")
	b.WriteString("QWAIT 100\n")
	b.WriteString("H S0\n")
	for i := 0; i < numQubits-1; i++ {
		fmt.Fprintf(&b, "SMIT T0, {(%d, %d)}\n", i, i+1)
		b.WriteString("2, CNOT T0\n")
	}
	b.WriteString("2, MEASZ S1\n")
	b.WriteString("QWAIT 50\n")
	b.WriteString("STOP\n")
	return b.String()
}

func main() {
	opts := []eqasm.Option{eqasm.WithTopology("chain1024"), eqasm.WithSeed(7)}
	prog, err := eqasm.Assemble(source(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("GHZ over %d qubits: %d instructions, %d shots in %v (backend: %s)\n",
		numQubits, prog.NumInstructions(), res.Shots, elapsed.Round(time.Millisecond), res.Backend)
	for key, count := range res.Histogram {
		fmt.Printf("  %s…%s  ×%d\n", key[:4], key[len(key)-4:], count)
	}
	fmt.Printf("gate profile: %d CNOT sites, %d measure sites\n",
		res.GateProfile["gate2.perm"], res.GateProfile["measure"])
	fmt.Println("\nall qubits agree within every shot — the entangled state")
	fmt.Println("collapses as one, whichever of its 1024 qubits is read first")
}
