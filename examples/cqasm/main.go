// The textual front door of the Fig. 1 flow: a hardware-independent
// circuit written in the cQASM v1.0 subset is parsed, compiled through
// the pass pipeline (schedule, SOMQ packing, register allocation, ts3
// timing lowering) and executed on the QuMA_v2 simulator — common QASM
// in, executable QASM out, histogram back. Also shows how parse faults
// come back as positioned diagnostics.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"eqasm"
)

const bell = `
version 1.0
qubits 3

h q[0]
cnot q[0], q[2]

# Parallel bundle: both measurements issue at the same timing point
# (the compiler's SOMQ pass combines them into one MEASZ over {0, 2}).
{ measure q[0] | measure q[2] }
`

// broken demonstrates the diagnostics: the gate name is wrong and the
// qubit index is out of range.
const broken = `
qubits 2
hadamard q[0]
x q[7]
`

func main() {
	opts := []eqasm.Option{
		eqasm.WithTopology("twoqubit"),
		eqasm.WithSOMQ(),
		eqasm.WithSeed(7),
	}

	// Parse alone returns the hardware-independent circuit.
	circ, err := eqasm.ParseCircuit(bell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d qubits, %d gates\n", "bell", circ.NumQubits, len(circ.Gates))

	// CompileCircuit goes straight from cQASM text to a bound program.
	prog, err := eqasm.CompileCircuit(bell, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled eQASM:")
	fmt.Println(prog.Text())

	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("histogram over 1000 shots (perfectly correlated Bell pair):")
	for key, n := range res.Histogram {
		fmt.Printf("  %s  %4d\n", key, n)
	}

	// Malformed circuits fail with the same *AssembleError shape the
	// assembler uses: one positioned diagnostic per fault.
	_, err = eqasm.ParseCircuit(broken)
	var ae *eqasm.AssembleError
	if errors.As(err, &ae) {
		fmt.Println("\ndiagnostics for the broken circuit:")
		for _, d := range ae.Diagnostics {
			fmt.Printf("  %s\n", d)
		}
	}
}
