// Plan-time gate fusion A/B: run a non-Clifford rz ladder on the
// 16-qubit chain chip with fusion on and off, compare wall-clock shot
// rates, and read the fused-kernel breakdown and fused/unfused site
// ratio from Result.GateProfile. Fixed-seed results are identical
// either way — fusion only changes how many amplitude passes the
// state-vector backend pays.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"eqasm"
)

// An IQPE-style ladder: Hadamard-framed z rotations by successively
// halved angles on all 16 qubits, a CZ layer across the chain's eight
// disjoint pairs in the middle. Every single-qubit layer is one full
// pass over 2^16 amplitudes unfused; under fusion the whole ladder
// coalesces into eight precomposed 4x4 kernels around the CZ layer.
func ladder() string {
	var b strings.Builder
	b.WriteString("SMIS S0, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}\n")
	b.WriteString("SMIT T0, {(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11), (12, 13), (14, 15)}\n")
	b.WriteString("QWAIT 100\n")
	angle := 0.7853981633974483
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "H S0\nRZ(%.16g) S0\n", angle)
		angle /= 2
	}
	b.WriteString("CZ T0\n2, H S0\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "RZ(%.16g) S0\nH S0\n", angle)
		angle /= 2
	}
	b.WriteString("2, MEASZ S0\nQWAIT 50\nSTOP\n")
	return b.String()
}

func main() {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(1), eqasm.WithTopology("chain16"))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := eqasm.Assemble(ladder(), eqasm.WithTopology("chain16"))
	if err != nil {
		log.Fatal(err)
	}

	const shots = 12
	run := func(fusion string) *eqasm.Result {
		start := time.Now()
		res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{
			Shots:   shots,
			Seed:    7,
			Backend: eqasm.BackendStateVector,
			Fusion:  fusion,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fusion %-3s  %6.1f shots/s\n", fusion, float64(shots)/time.Since(start).Seconds())
		return res
	}
	fused := run(eqasm.FusionOn)
	plain := run(eqasm.FusionOff)

	// Fusion never changes outcomes: the fixed-seed histograms match.
	if fmt.Sprint(fused.Histogram) != fmt.Sprint(plain.Histogram) {
		log.Fatal("histograms diverge — fusion must be invisible in results")
	}
	fmt.Printf("\nfixed-seed histograms identical over %d shots (%d outcomes)\n",
		shots, len(fused.Histogram))

	// The executed-kernel profile shows where the passes went.
	p := fused.GateProfile
	total, fusedSites := p[eqasm.ProfileFusionTotal], p[eqasm.ProfileFusionFused]
	fmt.Printf("\nfused run, per shot: %d of %d gate sites fused (%.0f%%), %d applications elided\n",
		fusedSites, total, 100*float64(fusedSites)/float64(total), p[eqasm.ProfileFusionElided])
	var kinds []string
	for k := range p {
		if strings.HasPrefix(k, "fused.") {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-22s ×%d\n", k, p[k])
	}
}
