// Surface-17 error detection: eQASM instantiated for a 17-qubit
// distance-3 surface-code processor (the paper's future-work target of
// "a different quantum chip topology"). Selecting the surface17
// topology through the public API also swaps the SMIT encoding from a
// 16-bit edge mask to two explicit address pairs (Section 3.3.2) and
// widens the SMIS mask to 17 bits.
//
// The program measures the Z-parity of two data qubits through a
// stabilizer ancilla, then uses comprehensive feedback control to apply
// a bit-flip correction when the syndrome fires — the
// error-detection-plus-feedback loop that motivates the whole
// architecture.
package main

import (
	"context"
	"fmt"
	"log"

	"eqasm"
)

func main() {
	for _, injectError := range []bool{false, true} {
		inject := "I S1              # no error"
		if injectError {
			inject = "X S1              # inject a bit flip on data qubit 0"
		}
		// Ancilla 9 measures the parity of data qubits 0 and 1 through
		// its couplings (9,0) and (9,1); a fired syndrome triggers the
		// CFC correction path.
		src := `
SMIS S0, {9}          # ancilla
SMIS S1, {0}          # data qubit under test
SMIS S2, {0, 1}       # both data qubits
SMIT T0, {(9, 0)}
SMIT T1, {(9, 1)}
LDI R0, 1
` + inject + `
QWAIT 10
H S0
CZ T0
2, CZ T1
2, H S0
MEASZ S0
QWAIT 30
FMR R1, Q9            # fetch the syndrome
CMP R1, R0
BR EQ, correct
BR ALWAYS, verify
correct:
X S1                  # bit-flip correction on data qubit 0
verify:
MEASZ S2
QWAIT 50
STOP
`
		prog, err := eqasm.Assemble(src, eqasm.WithTopology("surface17"))
		if err != nil {
			log.Fatal(err)
		}
		sim, err := eqasm.NewSimulator(eqasm.WithTopology("surface17"))
		if err != nil {
			log.Fatal(err)
		}
		stream, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: 1})
		if err != nil {
			log.Fatal(err)
		}
		syndrome := -1
		final := map[int]int{}
		for sr := range stream {
			if sr.Err != nil {
				log.Fatal(sr.Err)
			}
			for _, m := range sr.Measurements {
				if m.Qubit == 9 && syndrome == -1 {
					syndrome = m.Result
				} else {
					final[m.Qubit] = m.Result
				}
			}
		}
		// The same run through the Result surface reports which chip
		// simulator executed it: the program is Clifford-only and
		// noiseless, so auto-selection picks the stabilizer tableau.
		res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected error: %-5v  syndrome: %d  data after correction: q0=%d q1=%d  (backend: %s)\n",
			injectError, syndrome, final[0], final[1], res.Backend)
	}
	fmt.Println("\nthe syndrome fires exactly when an error was injected, and the")
	fmt.Println("CFC branch restores the data qubit before verification")
}
