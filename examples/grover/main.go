// Two-qubit Grover search (Section 5's algorithm demonstration): the
// full data-flow of the "quantum data, classical control" paradigm —
// superposition, oracle, diffusion — compiled to eQASM, executed on the
// QuMA_v2 model, and characterised by maximum-likelihood state
// tomography exactly as the paper reports its 85.6% algorithmic
// fidelity.
package main

import (
	"fmt"
	"log"

	"eqasm/internal/experiments"
)

func main() {
	noise := experiments.CalibratedNoise()
	fmt.Println("two-qubit Grover search, calibrated chip:")
	for marked := 0; marked < 4; marked++ {
		r, err := experiments.RunGrover(experiments.GroverOptions{
			Noise:           noise,
			Seed:            int64(100 + marked),
			Marked:          marked,
			ShotsPerSetting: 1200,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  marked |%02b>: MLE-tomography fidelity %.1f%%, direct success %.1f%%\n",
			marked, 100*r.Fidelity, 100*r.SuccessProb)
	}
	fmt.Println("\npaper, Section 5: algorithmic fidelity 85.6%, limited by the CZ gate")
}
