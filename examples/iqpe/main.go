// Iterative quantum phase estimation — the "quantum data, classical
// control" workload the paper's introduction motivates eQASM with. One
// generated program combines every feedback mechanism of the
// architecture: comprehensive feedback control steers a per-iteration
// branch tree selecting classically-computed phase corrections, fast
// conditional execution recycles the ancilla between iterations, the
// accumulator arithmetic runs on the auxiliary classical instructions,
// the controlled-U powers are compile-time configured custom operations,
// and the final estimate is published to the host through the shared
// data memory.
package main

import (
	"fmt"
	"log"
	"sort"

	"eqasm/internal/experiments"
)

func main() {
	// Estimate phi = 2*pi * 5/8 (bits 101) on an ideal chip (the zero
	// noise model).
	r, err := experiments.RunIQPE(experiments.IQPEOptions{
		Seed:           1,
		Bits:           3,
		PhaseNumerator: 5,
		Shots:          100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal chip, true phase = 2*pi * %d/8:\n", r.PhaseNumerator)
	fmt.Printf("  exact recovery rate: %.0f%%\n\n", 100*r.SuccessRate)

	// The same estimation on the calibrated noisy chip.
	r, err = experiments.RunIQPE(experiments.IQPEOptions{
		Noise:          experiments.CalibratedNoise(),
		Seed:           2,
		Bits:           3,
		PhaseNumerator: 5,
		Shots:          400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrated chip, estimate histogram:")
	var keys []int
	for k := range r.Histogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %03b: %3d shots\n", k, r.Histogram[k])
	}
	fmt.Printf("exact recovery rate: %.0f%% (readout-limited)\n", 100*r.SuccessRate)

	fmt.Println("\ngenerated program (first iterations):")
	lines := 0
	for _, line := range splitLines(r.Program) {
		fmt.Println("  " + line)
		lines++
		if lines > 30 {
			fmt.Println("  ...")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
