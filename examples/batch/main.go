// Batch execution: a seed sweep submitted as one asynchronous job —
// the Fig. 4 operator pattern of queueing many kernels against one
// control stack, written against the job-centric Submit/Job API. One
// Submit call carries N tagged requests; the Job handle reports live
// per-request status and hands back one Result per request, each
// bit-identical to running that request alone at the same seed.
//
// The same Submit call works unchanged against a remote eqasm-serve
// fleet: swap NewSimulator for eqasm.NewClient("http://host:8080") and
// the whole sweep travels as a single /v1/batches round-trip.
package main

import (
	"context"
	"fmt"
	"log"

	"eqasm"
)

// A Bell pair: the canonical two-outcome program whose histogram shape
// the sweep compares across random seeds.
const bell = `
SMIS S0, {0}
SMIS S2, {0, 2}
SMIT T0, {(0, 2)}
QWAIT 10000
H S0
CNOT T0
2, MEASZ S2
QWAIT 50
STOP
`

func main() {
	prog, err := eqasm.Assemble(bell)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := eqasm.NewSimulator()
	if err != nil {
		log.Fatal(err)
	}

	// One request per sweep point, each with its own seed and tag.
	const points = 6
	reqs := make([]eqasm.RunRequest, points)
	for i := range reqs {
		reqs[i] = eqasm.RunRequest{
			Program: prog,
			Options: eqasm.RunOptions{Shots: 500, Seed: int64(100 + i)},
			Tag:     fmt.Sprintf("seed-%d", 100+i),
		}
	}

	job, err := sim.Submit(context.Background(), reqs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s with %d requests\n", job.ID(), points)

	results, err := job.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("seed sweep (histogram per request):")
	for i, rs := range job.Requests() {
		res := results[i]
		fmt.Printf("  %-9s %s  00=%3d  11=%3d  (%d shots, %d quantum ops total)\n",
			rs.Tag, rs.State, res.Histogram["00"], res.Histogram["11"],
			res.Shots, res.TotalStats.QuantumOps)
	}
}
