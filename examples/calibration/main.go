// Calibration workflow (Section 5's first experiments): Rabi amplitude
// sweep with user-defined X_AMP_<i> operations — eQASM's compile-time
// operation configuration at work — followed by a T1 relaxation
// measurement using register-valued waits (QWAITR), and the AllXY gate
// check of Fig. 11.
package main

import (
	"fmt"
	"log"
	"strings"

	"eqasm/internal/experiments"
)

func main() {
	noise := experiments.CalibratedNoise()

	rabi, err := experiments.RunRabi(experiments.RabiOptions{Noise: noise, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Rabi oscillation (21 uncalibrated X_AMP operations):")
	for _, p := range rabi.Points {
		bar := strings.Repeat("#", int(p.P1*40+0.5))
		fmt.Printf("  amp %2d  P1 %.2f |%-40s|\n", p.Index, p.P1, bar)
	}
	fmt.Printf("pi-pulse amplitude found at index %d\n\n", rabi.PiPulseIndex)

	t1, err := experiments.RunT1(experiments.T1Options{Noise: noise, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1 experiment (X - QWAITR - MEASZ):")
	for _, p := range t1.Points {
		fmt.Printf("  %7.1f us  P1 %.3f\n", p.DelayNs/1000, p.P1)
	}
	fmt.Printf("fitted T1 = %.1f us (chip configured with %.1f us)\n\n",
		t1.FittedT1Ns/1000, noise.T1Ns/1000)

	axy, err := experiments.RunAllXY(experiments.AllXYOptions{Noise: noise, Seed: 3, Shots: 300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-qubit AllXY (Fig. 11 staircase):")
	fmt.Print(axy.Render())
}
