// Compiler-backend tour (the Fig. 1 flow): a hardware-independent circuit
// is mapped onto the surface-7 coupling graph (SWAP routing), scheduled
// ASAP and ALAP, emitted as executable eQASM, encoded to the 32-bit
// binary, executed on the QuMA_v2 model, and compared against the QuMIS
// baseline encoding.
package main

import (
	"fmt"
	"log"

	"eqasm/internal/compiler"
	"eqasm/internal/isa"
	"eqasm/internal/microarch"
	"eqasm/internal/qumis"
	"eqasm/internal/topology"
)

func main() {
	// A 3-qubit GHZ-style circuit with a two-qubit gate between virtual
	// qubits that will not sit adjacent on the chip.
	circ := &compiler.Circuit{
		Name:      "ghz3",
		NumQubits: 3,
		Gates: []compiler.Gate{
			{Name: "H", Qubits: []int{0}},
			// CNOT(0->1) in the native gate set: H(1) CZ(0,1) H(1).
			{Name: "H", Qubits: []int{1}},
			{Name: "CZ", Qubits: []int{0, 1}},
			{Name: "H", Qubits: []int{1}},
			// CNOT(1->2).
			{Name: "H", Qubits: []int{2}},
			{Name: "CZ", Qubits: []int{1, 2}},
			{Name: "H", Qubits: []int{2}},
			{Name: "MEASZ", Qubits: []int{0}, Measure: true},
			{Name: "MEASZ", Qubits: []int{1}, Measure: true},
			{Name: "MEASZ", Qubits: []int{2}, Measure: true},
		},
	}
	topo := topology.Surface7()
	cfg := isa.DefaultConfig()

	// 1. Qubit mapping: virtual 0,1,2 -> physical 2,0,3 (0-1 adjacent,
	//    1-2 adjacent on the chip; no SWAPs needed for this placement).
	mapped, err := compiler.MapToTopology(circ, topo, []int{2, 0, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping: virtual->physical %v, %d swaps inserted\n\n", mapped.Final, mapped.SwapCount)

	// 2. Scheduling, both disciplines.
	asap, err := compiler.ASAP(mapped.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	alap, err := compiler.ALAP(mapped.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ASAP schedule:")
	fmt.Print(asap.Gantt(24))
	fmt.Println("\nALAP schedule (same makespan, gates pushed late):")
	fmt.Print(alap.Gantt(24))

	// 3. Code generation and binary encoding.
	em := compiler.NewEmitter(cfg, topo)
	prog, err := em.Emit(asap, compiler.EmitOptions{SOMQ: true, AppendStop: true, InitWaitCycles: 100})
	if err != nil {
		log.Fatal(err)
	}
	words, err := isa.EncodeProgram(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemitted %d instructions (%d bytes):\n%s\n", len(words), 4*len(words), prog)

	// 4. Execution on the cycle-level microarchitecture.
	m, err := microarch.New(microarch.Config{Topo: topo, OpConfig: cfg})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadBinary(words); err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for shot := 0; shot < 200; shot++ {
		m.Reset()
		if err := m.Run(); err != nil {
			log.Fatal(err)
		}
		key := ""
		for _, r := range m.Measurements() {
			key += fmt.Sprint(r.Result)
		}
		counts[key]++
	}
	fmt.Println("measurement statistics over 200 shots (GHZ: all agree):")
	for k, n := range counts {
		fmt.Printf("  %s: %d\n", k, n)
	}

	// 5. Information-density comparison against the QuMIS baseline.
	cmp, err := qumis.CompareWithEQASM(asap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuMIS baseline: %d instructions; eQASM (Config 9, w=2): %d (%.0f%% fewer)\n",
		cmp.QuMIS, cmp.EQASM, 100*cmp.Reduction)
}
