// Compiler-backend tour (the Fig. 1 flow) through the public eqasm
// package: a hardware-independent circuit is mapped onto the surface-7
// coupling graph, scheduled, emitted as executable eQASM, encoded to
// the 32-bit binary, and executed on the QuMA_v2 model — one Compile
// call with functional options per step that used to need hand-wiring
// of the internal compiler.
package main

import (
	"context"
	"fmt"
	"log"

	"eqasm"
)

func main() {
	// A 3-qubit GHZ-style circuit with a two-qubit gate between virtual
	// qubits that will not sit adjacent on the chip.
	circ := &eqasm.Circuit{
		Name:      "ghz3",
		NumQubits: 3,
		Gates: []eqasm.Gate{
			{Name: "H", Qubits: []int{0}},
			// CNOT(0->1) in the native gate set: H(1) CZ(0,1) H(1).
			{Name: "H", Qubits: []int{1}},
			{Name: "CZ", Qubits: []int{0, 1}},
			{Name: "H", Qubits: []int{1}},
			// CNOT(1->2).
			{Name: "H", Qubits: []int{2}},
			{Name: "CZ", Qubits: []int{1, 2}},
			{Name: "H", Qubits: []int{2}},
			{Name: "MEASZ", Qubits: []int{0}, Measure: true},
			{Name: "MEASZ", Qubits: []int{1}, Measure: true},
			{Name: "MEASZ", Qubits: []int{2}, Measure: true},
		},
	}

	// Qubit mapping (virtual 0,1,2 -> physical 2,0,3: both CZ pairs sit
	// adjacent, no SWAPs needed), ASAP scheduling, SOMQ combining and a
	// short initialisation wait, all in one compile.
	opts := []eqasm.Option{
		eqasm.WithTopology("surface7"),
		eqasm.WithInitialLayout(2, 0, 3),
		eqasm.WithSOMQ(),
		eqasm.WithInitWaitCycles(100),
	}
	prog, err := eqasm.Compile(circ, opts...)
	if err != nil {
		log.Fatal(err)
	}
	words, err := prog.Words()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emitted %d instructions (%d bytes):\n%s\n", len(words), 4*len(words), prog.Text())

	// The same circuit under ALAP scheduling has the same makespan with
	// gates pushed late; compare the listings.
	alap, err := eqasm.Compile(circ, append(opts, eqasm.WithSchedule("alap"))...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALAP emission: %d instructions (same makespan, gates pushed late)\n\n",
		alap.NumInstructions())

	// Execution on the cycle-level microarchitecture through the same
	// Backend interface a job service would use.
	sim, err := eqasm.NewSimulator(append(opts, eqasm.WithSeed(1))...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measurement statistics over 200 shots (GHZ: all agree):")
	for k, n := range res.Histogram {
		fmt.Printf("  %s: %d\n", k, n)
	}
}
