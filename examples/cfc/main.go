// Comprehensive feedback control (Fig. 5): measurement-dependent program
// flow through the FMR / CMP / BR path, verified against a mock
// measurement unit exactly as the paper did (UHFQC programmed to emit
// scripted results, outputs observed on an oscilloscope — here, the
// device-operation trace). Also measures both feedback latencies.
package main

import (
	"fmt"
	"log"
	"strings"

	"eqasm/internal/experiments"
)

func main() {
	// Strict alternation, as in the paper's verification.
	r, err := experiments.RunCFC(experiments.CFCOptions{Rounds: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mock measurement results alternate 0,1,0,1,...")
	fmt.Printf("observed operations on qubit 0: %s\n", strings.Join(r.Ops, " "))
	fmt.Printf("program flow followed the results: %v\n\n", r.Alternates)

	// An arbitrary script: CFC supports any user-defined feedback.
	script := []int{1, 0, 0, 1, 1, 0, 1, 0}
	r, err = experiments.RunCFC(experiments.CFCOptions{
		Rounds:      len(script),
		MockResults: func(round int) int { return script[round] },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scripted results:   %v\n", script)
	fmt.Printf("observed sequence:  %s (X for 0, Y for 1)\n", strings.Join(r.Ops, " "))
	fmt.Printf("matches: %v\n\n", r.Alternates)

	lat, err := experiments.MeasureLatencies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast conditional execution latency: %d ns (paper: ~92 ns)\n", lat.FastCondNs)
	fmt.Printf("comprehensive feedback control latency: %d ns (paper: ~316 ns)\n", lat.CFCNs)
}
