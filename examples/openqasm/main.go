// The second textual front door: the same Bell circuit written in
// OpenQASM 2.0 — the dominant interchange format, the common QASM
// every Qiskit export speaks — is parsed, compiled through the
// identical pass pipeline and executed on the QuMA_v2 simulator. The
// example also proves the conformance contract the front ends hold:
// the cQASM twin of the circuit compiles to byte-identical eQASM, and
// parse faults come back as the same positioned diagnostics.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"eqasm"
)

const bell = `
OPENQASM 2.0;
include "qelib1.inc";

qreg q[3];
creg c[2];

h q[0];
cx q[0], q[2];

measure q[0] -> c[0];
measure q[2] -> c[1];
`

// bellCQ is the same circuit in the cQASM front end's syntax.
const bellCQ = `
version 1.0
qubits 3
h q[0]
cnot q[0], q[2]
measure q[0]
measure q[2]
`

// broken demonstrates the diagnostics: an unknown gate, an
// out-of-range index and a reused control qubit, all reported from one
// parse.
const broken = `
OPENQASM 2.0;
qreg q[2];
hadamard q[0];
x q[7];
cx q[0], q[0];
`

func main() {
	opts := []eqasm.Option{
		eqasm.WithTopology("twoqubit"),
		eqasm.WithSOMQ(),
		eqasm.WithSeed(7),
	}

	// DetectFormat sniffs the language; ParseOpenQASM returns the
	// hardware-independent circuit.
	fmt.Printf("detected format: %s\n", eqasm.DetectFormat(bell))
	circ, err := eqasm.ParseOpenQASM(bell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d qubits, %d gates\n", "bell", circ.NumQubits, len(circ.Gates))

	// CompileOpenQASM goes straight from OpenQASM text to a bound
	// program.
	prog, err := eqasm.CompileOpenQASM(bell, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled eQASM:")
	fmt.Println(prog.Text())

	// The conformance contract: the cQASM twin compiles to
	// byte-identical eQASM.
	twin, err := eqasm.CompileCircuit(bellCQ, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("byte-identical to the cQASM twin: %t\n", prog.Text() == twin.Text())

	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhistogram over 1000 shots (perfectly correlated Bell pair):")
	for key, n := range res.Histogram {
		fmt.Printf("  %s  %4d\n", key, n)
	}

	// Malformed circuits fail with the same *AssembleError shape the
	// assembler and the cQASM front end use: one positioned diagnostic
	// per fault, every statement's fault from a single parse.
	_, err = eqasm.ParseOpenQASM(broken)
	var ae *eqasm.AssembleError
	if errors.As(err, &ae) {
		fmt.Println("\ndiagnostics for the broken circuit:")
		for _, d := range ae.Diagnostics {
			fmt.Printf("  %s\n", d)
		}
	}
}
