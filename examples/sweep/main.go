// Sweep: a VQE-style parametric ansatz swept over 256 angles as one
// Submit batch. The circuit compiles ONCE — its symbolic %theta
// rotations become parameter slots in the shared execution plan — and
// every sweep point only binds the slots (a handful of 2x2 matrix
// builds) before replaying the plan. For contrast, the same grid is
// then run the slow way, recompiling the program per point with the
// angle baked in as a literal, and the points/s of both paths are
// printed.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"eqasm"
)

// ansatz is a tiny hardware-efficient trial state: a parametric Y
// rotation layered around an entangler, the repeating cell of a VQE
// ansatz. %theta is symbolic — the compiled plan carries a rotation
// slot instead of a baked gate matrix.
const ansatz = `
qubits 3
ry q[0], %theta
cnot q[0], q[2]
ry q[2], %theta
measure q[0,2]
`

const (
	points = 256
	shots  = 8
)

func main() {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Compile once: the plan has symbolic rotation slots.
	prog, err := eqasm.CompileCircuit(ansatz)
	if err != nil {
		log.Fatal(err)
	}
	names, err := prog.Params()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ansatz parameters: %v\n", names)

	grid := make([]float64, points)
	for i := range grid {
		grid[i] = 2 * math.Pi * float64(i) / points
	}

	// Fast path: one program, one plan, 256 parameter bindings.
	start := time.Now()
	reqs := make([]eqasm.RunRequest, points)
	for i, theta := range grid {
		reqs[i] = eqasm.RunRequest{
			Program: prog,
			Options: eqasm.RunOptions{Shots: shots, Seed: 1},
			Params:  map[string]float64{"theta": theta},
			Tag:     fmt.Sprintf("theta=%.4f", theta),
		}
	}
	job, err := sim.Submit(ctx, reqs...)
	if err != nil {
		log.Fatal(err)
	}
	patched, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	patchedTime := time.Since(start)

	// Slow path: recompile the circuit per point with the literal angle
	// baked in (what a sweep costs without plan-level binding).
	start = time.Now()
	baked := make([]*eqasm.Result, points)
	for i, theta := range grid {
		src := fmt.Sprintf(`
qubits 3
ry q[0], %[1]g
cnot q[0], q[2]
ry q[2], %[1]g
measure q[0,2]
`, theta)
		p, err := eqasm.CompileCircuit(src)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(ctx, p, eqasm.RunOptions{Shots: shots, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		baked[i] = res
	}
	recompiledTime := time.Since(start)

	// The two paths execute the same circuit at the same seed, so the
	// histograms are bit-identical point by point.
	for i := range grid {
		for k, v := range patched[i].Histogram {
			if baked[i].Histogram[k] != v {
				log.Fatalf("point %d (%s): patched %v != recompiled %v",
					i, reqs[i].Tag, patched[i].Histogram, baked[i].Histogram)
			}
		}
	}

	fmt.Printf("energy landscape (<Z0 Z2> every 32nd point):\n")
	for i := 0; i < points; i += 32 {
		fmt.Printf("  %-14s <ZZ> = %+.3f\n", reqs[i].Tag, zz(patched[i]))
	}

	fmt.Printf("\n%d points x %d shots, identical results on both paths:\n", points, shots)
	fmt.Printf("  patch table (compile once, bind per point): %8.0f points/s\n",
		points/patchedTime.Seconds())
	fmt.Printf("  recompile per point:                        %8.0f points/s\n",
		points/recompiledTime.Seconds())
	fmt.Printf("  speedup: %.1fx\n", recompiledTime.Seconds()/patchedTime.Seconds())
}

// zz estimates <Z0 Z2> from the outcome histogram: +1 for agreeing
// bits, -1 for disagreeing (histogram keys are bits over the measured
// qubits ascending, so q0 is key[0] and q2 is key[1]).
func zz(res *eqasm.Result) float64 {
	total, sum := 0, 0
	for key, n := range res.Histogram {
		if len(key) != 2 {
			continue
		}
		total += n
		if key[0] == key[1] {
			sum += n
		} else {
			sum -= n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}
