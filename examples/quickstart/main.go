// Quickstart: assemble and execute the paper's Fig. 3 AllXY snippet on
// the simulated two-qubit chip, then inspect the timing of the triggered
// pulses — the smallest end-to-end tour of the eQASM stack.
package main

import (
	"fmt"
	"log"

	"eqasm/internal/core"
	"eqasm/internal/microarch"
)

// The program of Fig. 3: initialise both qubits by idling 200 us, apply a
// Y gate to both via SOMQ, then an X90 and an X in one VLIW bundle, then
// measure both simultaneously.
const program = `
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
STOP
`

func main() {
	sys, err := core.NewSystem(core.Options{RecordDeviceOps: true})
	if err != nil {
		log.Fatal(err)
	}

	// Show the binary the assembler produces (Fig. 8 formats).
	words, err := sys.Binary(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instruction memory image:")
	for i, w := range words {
		fmt.Printf("  %2d: %08x\n", i, w)
	}

	if err := sys.Load(program); err != nil {
		log.Fatal(err)
	}
	counts := map[int]map[int]int{0: {}, 2: {}}
	err = sys.RunShots(200, func(_ int, m *microarch.Machine) {
		for _, r := range m.Measurements() {
			counts[r.Qubit][r.Result]++
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasurement statistics over 200 shots:")
	fmt.Printf("  qubit 0 (Y then X90, ends on the equator): P(1) = %.2f\n",
		float64(counts[0][1])/200)
	fmt.Printf("  qubit 2 (Y then X, ends in |0>):           P(1) = %.2f\n",
		float64(counts[2][1])/200)

	fmt.Println("\npulse timing of the last shot (20 ns cycles):")
	for _, op := range sys.Machine.DeviceTrace() {
		fmt.Printf("  %s\n", op)
	}
}
