// Quickstart: assemble and execute the paper's Fig. 3 AllXY snippet on
// the simulated two-qubit chip, then inspect the timing of the triggered
// pulses — the smallest end-to-end tour of the eQASM stack, written
// entirely against the public eqasm package.
package main

import (
	"context"
	"fmt"
	"log"

	"eqasm"
)

// The program of Fig. 3: initialise both qubits by idling 200 us, apply a
// Y gate to both via SOMQ, then an X90 and an X in one VLIW bundle, then
// measure both simultaneously.
const program = `
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
STOP
`

func main() {
	prog, err := eqasm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Show the binary the assembler produces (Fig. 8 formats).
	words, err := prog.Words()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instruction memory image:")
	for i, w := range words {
		fmt.Printf("  %2d: %08x\n", i, w)
	}

	sim, err := eqasm.NewSimulator(eqasm.WithDeviceTrace())
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sim.RunStream(context.Background(), prog, eqasm.RunOptions{Shots: 200})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]map[int]int{0: {}, 2: {}}
	var lastTrace []string
	for sr := range stream {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		for _, m := range sr.Measurements {
			counts[m.Qubit][m.Result]++
		}
		lastTrace = sr.Trace
	}
	fmt.Println("\nmeasurement statistics over 200 shots:")
	fmt.Printf("  qubit 0 (Y then X90, ends on the equator): P(1) = %.2f\n",
		float64(counts[0][1])/200)
	fmt.Printf("  qubit 2 (Y then X, ends in |0>):           P(1) = %.2f\n",
		float64(counts[2][1])/200)

	fmt.Println("\npulse timing of the last shot (20 ns cycles):")
	for _, op := range lastTrace {
		fmt.Printf("  %s\n", op)
	}
}
