// Active qubit reset (Fig. 4): the fast-conditional-execution showcase.
// A qubit is put on the equator with an X90, measured, and conditionally
// flipped back to |0> with a C_X gate that only fires when the last
// measurement read |1> — the paper's first feedback experiment, here run
// on both an ideal and the calibrated noisy chip.
package main

import (
	"fmt"
	"log"

	"eqasm/internal/experiments"
)

func main() {
	for _, cfg := range []struct {
		name  string
		noisy bool
	}{
		{"ideal chip", false},
		{"calibrated chip (readout-limited)", true},
	} {
		opts := experiments.ResetOptions{Seed: 7, Shots: 4000}
		if cfg.noisy {
			opts.Noise = experiments.CalibratedNoise()
		}
		r, err := experiments.RunReset(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  first measurement P(1): %.3f (X90 puts the qubit on the equator)\n", r.FirstP1)
		fmt.Printf("  C_X fired in %.1f%% of shots (fast conditional execution)\n", 100*r.PFlipApplied)
		fmt.Printf("  P(|0>) after conditional reset: %.1f%%\n\n", 100*r.P0)
	}
	fmt.Println("paper, Section 5: 82.7%, limited by the readout fidelity")
}
