package eqasm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testHWConf = `{
	"name": "flipchip",
	"topology": {"num_qubits": 1, "feedlines": [[0]]},
	"operations": [
		{"name": "X", "builtin": "X"},
		{"name": "MEASZ", "kind": "measure"}
	],
	"noise": {"readout_error": 1}
}`

// Stacks resolved from the same named options are interned, so machine
// pools and assembled programs share one instruction-set context.
func TestStackInterning(t *testing.T) {
	resolve := func(opts ...Option) stack {
		cfg, err := newConfig(opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cfg.resolveStack()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := resolve(WithTopology("surface7"))
	b := resolve(WithTopology("surface7"), WithSeed(99))
	if a != b {
		t.Fatal("named-topology stacks are not interned")
	}
	if a == resolve(WithTopology("twoqubit")) {
		t.Fatal("distinct topologies share a stack")
	}

	path := filepath.Join(t.TempDir(), "chip.json")
	if err := os.WriteFile(path, []byte(testHWConf), 0o644); err != nil {
		t.Fatal(err)
	}
	h1 := resolve(WithHardwareConfig(path))
	h2 := resolve(WithHardwareConfig(path))
	if h1 != h2 {
		t.Fatal("hardware-config stacks are not interned by path; every program would get its own machine pool")
	}
	if h1 == a {
		t.Fatal("hardware-config stack collides with a named one")
	}
}

// Noise options are last-wins, including a noise model carried by a
// hardware configuration file.
func TestNoisePrecedenceIsPositional(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chip.json")
	if err := os.WriteFile(path, []byte(testHWConf), 0o644); err != nil {
		t.Fatal(err)
	}
	noise := func(opts ...Option) NoiseModel {
		cfg, err := newConfig(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.resolveStack(); err != nil {
			t.Fatal(err)
		}
		return cfg.noise
	}
	// The file's model overrides an earlier option (the eqasm-run
	// `-config beats -noise` precedence)...
	if got := noise(WithCalibratedNoise(), WithHardwareConfig(path)); got.ReadoutError != 1 {
		t.Fatalf("file noise did not override earlier option: %+v", got)
	}
	// ...and a later option overrides the file.
	if got := noise(WithHardwareConfig(path), WithNoise(NoiseModel{})); got != (NoiseModel{}) {
		t.Fatalf("later option did not override file noise: %+v", got)
	}
	// Without a file, the explicit model stands.
	if got := noise(WithCalibratedNoise()); got != CalibratedNoise() {
		t.Fatalf("calibrated noise lost: %+v", got)
	}
}

// The pipeline knobs surface through functional options: the timing
// spec, PI width and VLIW width change the emitted code, and knobs the
// binary instantiation cannot encode are rejected.
func TestCompilePipelineOptions(t *testing.T) {
	src := "qubits 3\nh q[0]\nh q[2]\ncz q[2], q[0]\nmeasure q[0]\nmeasure q[2]\n"

	count := func(p *Program, what string) (n int) {
		for _, line := range strings.Split(p.Text(), "\n") {
			if what == "qwait" && strings.Contains(line, "QWAIT") {
				n++
			}
		}
		return n
	}
	ts3, err := CompileCircuit(src, WithSOMQ())
	if err != nil {
		t.Fatal(err)
	}
	ts1, err := CompileCircuit(src, WithSOMQ(), WithTimingSpec("ts1"))
	if err != nil {
		t.Fatal(err)
	}
	// ts3 hides the short intervals in PI fields; ts1 spends QWAITs.
	if count(ts1, "qwait") <= count(ts3, "qwait") {
		t.Fatalf("ts1 emitted %d QWAITs, ts3 %d:\n--- ts1 ---\n%s--- ts3 ---\n%s",
			count(ts1, "qwait"), count(ts3, "qwait"), ts1.Text(), ts3.Text())
	}
	// A 1-bit PI cannot hold the 2-cycle CZ wait: more QWAITs than the
	// default 3-bit field.
	narrow, err := CompileCircuit(src, WithSOMQ(), WithWPI(1))
	if err != nil {
		t.Fatal(err)
	}
	if count(narrow, "qwait") <= count(ts3, "qwait") {
		t.Fatalf("wPI=1 emitted %d QWAITs, wPI=3 %d", count(narrow, "qwait"), count(ts3, "qwait"))
	}
	// Width 1 serialises the two parallel Hs into two bundle words
	// (without SOMQ, which would merge them into one op regardless).
	wide, err := CompileCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := CompileCircuit(src, WithVLIWWidth(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumInstructions() <= wide.NumInstructions() {
		t.Fatalf("w=1 program has %d instructions, w=2 has %d",
			serial.NumInstructions(), wide.NumInstructions())
	}

	for _, bad := range [][]Option{
		{WithTimingSpec("ts2")},
		{WithTimingSpec("ts9")},
		{WithWPI(7)},
		{WithVLIWWidth(5)},
		{WithWPI(-1)},
		{WithWPI(0)},
		{WithVLIWWidth(-2)},
		{WithVLIWWidth(0)},
	} {
		if _, err := CompileCircuit(src, bad...); err == nil {
			t.Errorf("options %v accepted", bad)
		}
	}
}
