package eqasm

import (
	"os"
	"path/filepath"
	"testing"
)

const testHWConf = `{
	"name": "flipchip",
	"topology": {"num_qubits": 1, "feedlines": [[0]]},
	"operations": [
		{"name": "X", "builtin": "X"},
		{"name": "MEASZ", "kind": "measure"}
	],
	"noise": {"readout_error": 1}
}`

// Stacks resolved from the same named options are interned, so machine
// pools and assembled programs share one instruction-set context.
func TestStackInterning(t *testing.T) {
	resolve := func(opts ...Option) stack {
		cfg, err := newConfig(opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cfg.resolveStack()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := resolve(WithTopology("surface7"))
	b := resolve(WithTopology("surface7"), WithSeed(99))
	if a != b {
		t.Fatal("named-topology stacks are not interned")
	}
	if a == resolve(WithTopology("twoqubit")) {
		t.Fatal("distinct topologies share a stack")
	}

	path := filepath.Join(t.TempDir(), "chip.json")
	if err := os.WriteFile(path, []byte(testHWConf), 0o644); err != nil {
		t.Fatal(err)
	}
	h1 := resolve(WithHardwareConfig(path))
	h2 := resolve(WithHardwareConfig(path))
	if h1 != h2 {
		t.Fatal("hardware-config stacks are not interned by path; every program would get its own machine pool")
	}
	if h1 == a {
		t.Fatal("hardware-config stack collides with a named one")
	}
}

// Noise options are last-wins, including a noise model carried by a
// hardware configuration file.
func TestNoisePrecedenceIsPositional(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chip.json")
	if err := os.WriteFile(path, []byte(testHWConf), 0o644); err != nil {
		t.Fatal(err)
	}
	noise := func(opts ...Option) NoiseModel {
		cfg, err := newConfig(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.resolveStack(); err != nil {
			t.Fatal(err)
		}
		return cfg.noise
	}
	// The file's model overrides an earlier option (the eqasm-run
	// `-config beats -noise` precedence)...
	if got := noise(WithCalibratedNoise(), WithHardwareConfig(path)); got.ReadoutError != 1 {
		t.Fatalf("file noise did not override earlier option: %+v", got)
	}
	// ...and a later option overrides the file.
	if got := noise(WithHardwareConfig(path), WithNoise(NoiseModel{})); got != (NoiseModel{}) {
		t.Fatalf("later option did not override file noise: %+v", got)
	}
	// Without a file, the explicit model stands.
	if got := noise(WithCalibratedNoise()); got != CalibratedNoise() {
		t.Fatalf("calibrated noise lost: %+v", got)
	}
}
