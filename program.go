package eqasm

import (
	"fmt"
	"strings"
	"sync"

	"eqasm/internal/asm"
	"eqasm/internal/compiler"
	"eqasm/internal/cqasm"
	"eqasm/internal/ir"
	"eqasm/internal/isa"
	"eqasm/internal/openqasm"
	"eqasm/internal/plan"
)

// Program is an assembled eQASM program bound to the instruction-set
// context (chip topology, operation configuration, binary
// instantiation) it was produced under, so execution, encoding and
// disassembly stay coherent with assembly — the Section 3.2 contract
// made explicit. Programs are immutable and safe to share across
// backends and goroutines.
//
// A Program lazily carries its decode-once execution plan: the first
// execution (or an explicit Prepare call) lowers the instruction
// sequence against the bound context — operands resolved, microcode
// looked up, target masks expanded, gates kernel-classified — and
// every subsequent shot on every pooled machine replays the shared
// read-only plan.
type Program struct {
	prog   *isa.Program
	st     stack
	source string

	planMu   sync.Mutex
	planned  *plan.Executable
	planErr  error
	planDone bool
}

// Assemble parses and validates eQASM assembly source against the
// configured topology and operation set, returning the bound program.
// Malformed source fails with an *AssembleError carrying per-diagnostic
// line and column positions.
func Assemble(src string, opts ...Option) (*Program, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	return assembleWith(st, src)
}

func assembleWith(st stack, src string) (*Program, error) {
	a := asm.New(st.opCfg, st.topo)
	a.Inst = st.inst
	prog, err := a.Assemble(src)
	if err != nil {
		return nil, wrapAssembleErr(err)
	}
	return &Program{prog: prog, st: st, source: src}, nil
}

// LoadBinary decodes a binary instruction image (as produced by Bytes
// or by cmd/eqasm-asm) into a runnable program.
func LoadBinary(bin []byte, opts ...Option) (*Program, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	words, err := isa.BytesToWords(bin)
	if err != nil {
		return nil, err
	}
	prog, err := st.inst.DecodeProgram(words, st.opCfg)
	if err != nil {
		return nil, err
	}
	return &Program{prog: prog, st: st}, nil
}

// Disassemble decodes a binary instruction image and renders an
// assembly listing that Assemble accepts back (round-trip property).
func Disassemble(bin []byte, opts ...Option) (string, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return "", err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return "", err
	}
	words, err := isa.BytesToWords(bin)
	if err != nil {
		return "", err
	}
	return disassembleWith(st, words)
}

func disassembleWith(st stack, words []uint32) (string, error) {
	d := asm.NewDisassembler(st.opCfg, st.topo)
	d.Inst = st.inst
	return d.Disassemble(words)
}

// renderSource renders the program as assembler-parseable source
// directly from the in-memory instruction list, without a round trip
// through the binary encoding — the only rendering available to
// parametric programs, whose symbolic-angle operations have no 32-bit
// encoding.
func (p *Program) renderSource() (string, error) {
	d := asm.NewDisassembler(p.st.opCfg, p.st.topo)
	d.Inst = p.st.inst
	return d.RenderProgram(p.prog)
}

// executable returns the program's execution plan, lowering it on
// first use; cached reports whether the plan had already been built.
func (p *Program) executable() (ex *plan.Executable, cached bool, err error) {
	p.planMu.Lock()
	defer p.planMu.Unlock()
	if p.planDone {
		return p.planned, true, p.planErr
	}
	p.planned, p.planErr = plan.Build(p.prog, p.st.topo, p.st.opCfg)
	p.planDone = true
	return p.planned, false, p.planErr
}

// Prepare lowers the program into its decode-once execution plan ahead
// of the first run (backends otherwise build it lazily), returning
// whether the plan was already cached. Serving layers call it at
// submit time so the cost of planning is paid once per cached program,
// never on the shot hot path.
func (p *Program) Prepare() (cached bool, err error) {
	_, cached, err = p.executable()
	return cached, err
}

// Params returns the sorted distinct symbolic parameter names of the
// program (nil when the program is not parametric). Lowers the
// execution plan on first use.
func (p *Program) Params() ([]string, error) {
	ex, _, err := p.executable()
	if err != nil {
		return nil, err
	}
	return ex.ParamNames(), nil
}

// Source returns the assembly text the program was assembled from
// (empty for compiled circuits and decoded binaries).
func (p *Program) Source() string { return p.source }

// Chip names the topology the program is bound to ("twoqubit",
// "surface7", or a hardware configuration's name). Backends use it to
// refuse programs bound to a different chip than they run.
func (p *Program) Chip() string { return p.st.topo.Name }

// Text renders the resolved assembly listing.
func (p *Program) Text() string { return p.prog.String() }

// NumInstructions returns the instruction count after bundle splitting
// and label resolution.
func (p *Program) NumInstructions() int { return len(p.prog.Instrs) }

// Words encodes the program to 32-bit instruction words under its
// instantiation.
func (p *Program) Words() ([]uint32, error) {
	return p.st.inst.EncodeProgram(p.prog, p.st.opCfg)
}

// Bytes encodes the program to the little-endian binary image the host
// CPU uploads to instruction memory.
func (p *Program) Bytes() ([]byte, error) {
	words, err := p.Words()
	if err != nil {
		return nil, err
	}
	return isa.WordsToBytes(words), nil
}

// Disassemble encodes the program and renders it back as assembly text
// under the program's own context.
func (p *Program) Disassemble() (string, error) {
	words, err := p.Words()
	if err != nil {
		return "", err
	}
	return disassembleWith(p.st, words)
}

// Gate is one circuit-level operation on explicit qubits.
type Gate struct {
	// Name is the operation mnemonic, resolved against the operation
	// configuration when the circuit is compiled.
	Name string
	// Qubits lists the operands: one for single-qubit gates and
	// measurements, two (source, target) for two-qubit gates.
	Qubits []int
	// DurationCycles of the pulse; 0 means "look up by kind" during
	// scheduling.
	DurationCycles int
	// Measure marks a measurement operation.
	Measure bool
	// Angle is the rotation angle in radians of a parametric rotation
	// gate (RX/RY/RZ) with a literal angle. Ignored when Param is set;
	// must be zero for non-rotation gates.
	Angle float64
	// Param names a symbolic rotation parameter (cQASM "%name" without
	// the sigil) whose value is supplied per run through
	// RunOptions.Params / RunRequest.Params; "" for literal-angle and
	// non-rotation gates.
	Param string
}

// Circuit is a hardware-independent gate list over NumQubits qubits.
// Program order defines data dependencies (gates sharing a qubit must
// not reorder).
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

func (c *Circuit) internal() *compiler.Circuit {
	out := &compiler.Circuit{Name: c.Name, NumQubits: c.NumQubits}
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, compiler.Gate{
			Name:           g.Name,
			Qubits:         g.Qubits,
			DurationCycles: g.DurationCycles,
			Measure:        g.Measure,
			Angle:          g.Angle,
			Param:          g.Param,
		})
	}
	return out
}

// circuitFromInternal lifts a compiler circuit into the public type.
func circuitFromInternal(c *compiler.Circuit) *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits}
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, Gate{
			Name:           g.Name,
			Qubits:         g.Qubits,
			DurationCycles: g.DurationCycles,
			Measure:        g.Measure,
			Angle:          g.Angle,
			Param:          g.Param,
		})
	}
	return out
}

// Compile lowers a hardware-independent circuit to an executable eQASM
// program for the configured chip through the compiler's pass pipeline:
// validation, optional topology-aware qubit mapping (WithInitialLayout),
// ASAP or ALAP scheduling (WithSchedule), SOMQ/bundle packing
// (WithSOMQ), mask-register allocation, timing lowering (WithTimingSpec,
// WithWPI, WithInitWaitCycles) and emission (WithVLIWWidth). The
// resulting program carries the same context as Assemble would bind, so
// it runs on any Backend for that chip.
func Compile(c *Circuit, opts ...Option) (*Program, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	return compileIR(cfg, st, c.internal().IR())
}

// ParseCircuit parses cQASM source (the v1.0 subset: qubit
// declarations, single- and two-qubit gates, measurements and parallel
// { } bundles; see the package documentation for the grammar) into a
// hardware-independent Circuit. Malformed source fails with an
// *AssembleError carrying per-diagnostic line and column positions,
// exactly like Assemble.
func ParseCircuit(src string) (*Circuit, error) {
	p, err := cqasm.Parse(src)
	if err != nil {
		return nil, wrapParseErr(err)
	}
	return circuitFromInternal(compiler.FromIR(p)), nil
}

// CompileCircuit parses cQASM source and compiles it down to an
// executable eQASM program for the configured chip — the paper's full
// Fig. 1 flow (common QASM in, executable QASM out) in one call. It
// accepts the same functional options as Compile; gate-level compile
// faults point back at the cQASM source line.
func CompileCircuit(src string, opts ...Option) (*Program, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	p, err := cqasm.Parse(src)
	if err != nil {
		return nil, wrapParseErr(err)
	}
	return compileIR(cfg, st, p)
}

// ParseOpenQASM parses OpenQASM 2.0 source (the subset documented in
// the package comment of internal/openqasm: the OPENQASM 2.0 header,
// qreg/creg declarations, the primitive U/CX gates plus the
// standard-header sugar, measure, barrier, and %name rotation
// parameters) into the same hardware-independent Circuit the cQASM
// front end produces: the same circuit written in either syntax
// compiles to byte-identical eQASM. Malformed source fails with an
// *AssembleError carrying per-diagnostic line and column positions,
// exactly like ParseCircuit and Assemble.
func ParseOpenQASM(src string) (*Circuit, error) {
	p, err := openqasm.Parse(src)
	if err != nil {
		return nil, wrapParseErr(err)
	}
	return circuitFromInternal(compiler.FromIR(p)), nil
}

// CompileOpenQASM parses OpenQASM 2.0 source and compiles it down to
// an executable eQASM program for the configured chip — the same one
// call as CompileCircuit, fed by the OpenQASM front end. It accepts
// the same functional options; gate-level compile faults point back at
// the OpenQASM source line.
func CompileOpenQASM(src string, opts ...Option) (*Program, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	p, err := openqasm.Parse(src)
	if err != nil {
		return nil, wrapParseErr(err)
	}
	return compileIR(cfg, st, p)
}

// Source-format names, as used on the service wire ("format" field)
// and returned by DetectFormat.
const (
	// FormatEQASM is eQASM assembly.
	FormatEQASM = "eqasm"
	// FormatCQASM is the cQASM 1.0 circuit subset (ParseCircuit).
	FormatCQASM = "cqasm"
	// FormatOpenQASM is the OpenQASM 2.0 circuit subset (ParseOpenQASM).
	FormatOpenQASM = "openqasm"
)

// DetectFormat sniffs the language of program source text from its
// first significant line: FormatOpenQASM for an "OPENQASM" header,
// FormatCQASM for a cQASM "version"/"qubits" header, FormatEQASM
// otherwise. It reads only the leading tokens — a detection aid for
// tools accepting mixed inputs (cmd/eqasm-run picks the front end this
// way when the file extension is ambiguous), not a validator.
func DetectFormat(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		word := line
		if k := strings.IndexAny(word, " \t"); k >= 0 {
			word = word[:k]
		}
		switch word {
		case "OPENQASM":
			return FormatOpenQASM
		case "version", "qubits":
			return FormatCQASM
		}
		return FormatEQASM
	}
	return FormatEQASM
}

// compileIR drives the circuit IR through the compiler's pass pipeline
// under the resolved options and binds the emitted code to the stack.
func compileIR(cfg *config, st stack, p *ir.Program) (*Program, error) {
	if p.NumQubits > st.topo.NumQubits {
		return nil, fmt.Errorf("eqasm: circuit needs %d qubits, chip %q has %d",
			p.NumQubits, st.topo.Name, st.topo.NumQubits)
	}
	if st.topo.NumQubits > 64 {
		return nil, fmt.Errorf("eqasm: the compiler's register allocator targets chips up to 64 qubits (%q has %d); assemble wide-register programs directly",
			st.topo.Name, st.topo.NumQubits)
	}
	arch := compiler.DefaultArch(st.inst)
	arch.SOMQ = cfg.somq
	if cfg.specSet {
		arch.Spec = cfg.spec
	}
	if cfg.wpi != 0 {
		arch.WPI = cfg.wpi
	}
	if cfg.vliwWidth != 0 {
		arch.VLIWWidth = cfg.vliwWidth
	}
	pl, err := compiler.NewPipeline(compiler.PipelineConfig{
		Config:         st.opCfg,
		Topo:           st.topo,
		Inst:           st.inst,
		Map:            cfg.layout != nil,
		Layout:         cfg.layout,
		ALAP:           cfg.schedule == "alap",
		Arch:           arch,
		InitWaitCycles: cfg.initWait,
		AppendStop:     true,
	})
	if err != nil {
		return nil, err
	}
	if err := pl.Run(p); err != nil {
		return nil, err
	}
	return &Program{prog: p.Code, st: st}, nil
}

// OperationInfo describes one configured quantum operation: the
// compile-time operation configuration of Section 3.2 as seen through
// the public API.
type OperationInfo struct {
	// Name is the assembly mnemonic.
	Name string
	// Opcode is the q-opcode assigned in the binary instantiation.
	Opcode uint16
	// Kind is "single", "two-qubit" or "measurement".
	Kind string
	// DurationCycles is the pulse duration in quantum cycles.
	DurationCycles int
	// CondFlag is the fast-conditional-execution flag gating the
	// operation ("always" for unconditional operations).
	CondFlag string
}

// Operations lists the configured quantum operation set for the
// selected context, in name order.
func Operations(opts ...Option) ([]OperationInfo, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	var out []OperationInfo
	for _, name := range st.opCfg.Names() {
		def, _ := st.opCfg.ByName(name)
		out = append(out, OperationInfo{
			Name:           def.Name,
			Opcode:         def.Opcode,
			Kind:           def.Kind.String(),
			DurationCycles: def.DurationCycles,
			CondFlag:       def.CondSel.String(),
		})
	}
	return out, nil
}
