// Job-layer tests: the async Submit/Job lifecycle on the Simulator,
// batch-vs-individual parity on both backends (the core contract: a
// batch of N requests is bit-identical per request to N individual Run
// calls at the same seeds), streaming, independent request failure and
// aggregate stats. All of them must stay clean under `go test -race`.
package eqasm_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eqasm"
	"eqasm/internal/service"
)

// batchRequests builds one RunRequest per shipped program, each with
// its own seed and shot count so per-request option handling is
// exercised.
func batchRequests(t *testing.T) []eqasm.RunRequest {
	t.Helper()
	progs := shippedPrograms(t)
	names := []string{"bell.eqasm", "active_reset.eqasm", "cfc.eqasm", "loop.eqasm"}
	reqs := make([]eqasm.RunRequest, 0, len(names))
	for i, name := range names {
		src, ok := progs[name]
		if !ok {
			t.Fatalf("shipped program %s missing", name)
		}
		prog, err := eqasm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, eqasm.RunRequest{
			Program: prog,
			Options: eqasm.RunOptions{Shots: 20 + 5*i, Seed: int64(11 + i)},
			Tag:     name,
		})
	}
	return reqs
}

// A Simulator batch is bit-identical per request to individual Run
// calls at the same seeds.
func TestSimulatorBatchParity(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(t)
	job, err := sim.Submit(context.Background(), reqs...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if job.Status() != eqasm.JobCompleted {
		t.Fatalf("status = %q", job.Status())
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, req := range reqs {
		want, err := sim.Run(context.Background(), req.Program, req.Options)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got == nil {
			t.Fatalf("request %d: nil result", i)
		}
		if got.Shots != want.Shots {
			t.Fatalf("request %d: %d shots, want %d", i, got.Shots, want.Shots)
		}
		if fmt.Sprint(got.Histogram) != fmt.Sprint(want.Histogram) {
			t.Fatalf("request %d (%s): batch histogram %v, individual %v",
				i, req.Tag, got.Histogram, want.Histogram)
		}
		if fmt.Sprint(got.Qubits) != fmt.Sprint(want.Qubits) {
			t.Fatalf("request %d: qubits %v, want %v", i, got.Qubits, want.Qubits)
		}
		if got.TotalStats != want.TotalStats {
			t.Fatalf("request %d: total stats %+v, want %+v", i, got.TotalStats, want.TotalStats)
		}
	}
	// Per-request statuses carry tags and terminal states.
	for i, rs := range job.Requests() {
		if rs.Index != i || rs.Tag != reqs[i].Tag || rs.State != eqasm.JobCompleted {
			t.Fatalf("request status %d = %+v", i, rs)
		}
		if rs.Result != results[i] {
			t.Fatalf("request status %d result diverges from Results()", i)
		}
	}
}

// The same parity holds over HTTP: a 4-request /v1/batches job returns
// per-request histograms bit-identical to 4 individual Run calls (the
// service derives every request's batch seeds from its own base seed,
// independent of batch position).
func TestClientBatchParity(t *testing.T) {
	client := newServiceClient(t, service.Config{
		Workers:    4,
		BatchShots: 8,
		Machine:    []eqasm.Option{eqasm.WithSeed(4)},
	})
	reqs := batchRequests(t)
	job, err := client.Submit(context.Background(), reqs...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := client.Run(context.Background(), req.Program, req.Options)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got == nil || got.Shots != want.Shots {
			t.Fatalf("request %d: got %+v, want %d shots", i, got, want.Shots)
		}
		if fmt.Sprint(got.Histogram) != fmt.Sprint(want.Histogram) {
			t.Fatalf("request %d (%s): batch histogram %v, individual %v",
				i, req.Tag, got.Histogram, want.Histogram)
		}
		if got.TotalStats != want.TotalStats {
			t.Fatalf("request %d: total stats %+v, want %+v", i, got.TotalStats, want.TotalStats)
		}
	}
	// One batch job plus four individual jobs were submitted; the batch
	// counters reflect it.
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsSubmitted != 5 || st.RequestsSubmitted != 8 || st.BatchJobs != 1 {
		t.Fatalf("stats = %+v, want 5 jobs / 8 requests / 1 batch", st)
	}
}

// TotalStats sums per-shot counters. The shipped programs take no
// data-dependent branches, so every shot retires the same instruction
// count and the total is an exact multiple — on the Simulator and
// through the HTTP wire format.
func TestResultTotalStats(t *testing.T) {
	progSrc := shippedPrograms(t)["bell.eqasm"]
	prog, err := eqasm.Assemble(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 7
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	client := newServiceClient(t, service.Config{
		Workers: 2,
		Machine: []eqasm.Option{eqasm.WithSeed(3)},
	})
	for _, backend := range []eqasm.Backend{sim, client} {
		res, err := backend.Run(context.Background(), prog, eqasm.RunOptions{Shots: shots})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Instructions == 0 {
			t.Fatalf("%T: empty per-shot stats", backend)
		}
		if res.TotalStats.Instructions != int64(shots)*res.Stats.Instructions {
			t.Fatalf("%T: total %d instructions, want %d x %d",
				backend, res.TotalStats.Instructions, shots, res.Stats.Instructions)
		}
		if res.TotalStats.DurationNs != int64(shots)*res.Stats.DurationNs {
			t.Fatalf("%T: total %d ns, want %d x %d",
				backend, res.TotalStats.DurationNs, shots, res.Stats.DurationNs)
		}
	}
}

// A batch stream delivers every shot with its request index when the
// consumer attaches before execution proceeds (gated here through a
// blocking mock measurement).
func TestSimulatorBatchStream(t *testing.T) {
	gate := make(chan struct{})
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(1),
		eqasm.WithMockMeasure(func(qubit, index int) int {
			<-gate // hold every shot until the stream consumer attached
			return 1
		}))
	if err != nil {
		t.Fatal(err)
	}
	src := shippedPrograms(t)["active_reset.eqasm"]
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	shots := []int{3, 2}
	job, err := sim.Submit(context.Background(),
		eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: shots[0]}},
		eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: shots[1]}},
	)
	if err != nil {
		t.Fatal(err)
	}
	stream := job.Stream()
	close(gate)
	got := map[int]int{}
	for sr := range stream {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Shot != got[sr.Request] {
			t.Fatalf("request %d: shot %d arrived at position %d", sr.Request, sr.Shot, got[sr.Request])
		}
		got[sr.Request]++
	}
	for r, want := range shots {
		if got[r] != want {
			t.Fatalf("request %d streamed %d shots, want %d", r, got[r], want)
		}
	}
	if _, err := job.Results(); err != nil {
		t.Fatal(err)
	}
}

// One failing request does not poison its siblings: the batch finishes
// with per-request verdicts and the job reports the failure.
func TestBatchRequestFailureIsIsolated(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := eqasm.Assemble("LDI R1, -8\nLD R2, R1(0)\nSTOP")
	if err != nil {
		t.Fatal(err)
	}
	good, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	job, err := sim.Submit(context.Background(),
		eqasm.RunRequest{Program: bad, Options: eqasm.RunOptions{Shots: 2}, Tag: "bad"},
		eqasm.RunRequest{Program: good, Options: eqasm.RunOptions{Shots: 10}, Tag: "good"},
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := job.Wait(context.Background())
	if err == nil {
		t.Fatal("batch with a faulting request completed clean")
	}
	var rerr *eqasm.RuntimeError
	if !errors.As(err, &rerr) {
		t.Fatalf("job error is %T, want *RuntimeError", err)
	}
	if job.Status() != eqasm.JobFailed {
		t.Fatalf("status = %q, want failed", job.Status())
	}
	reqs := job.Requests()
	if reqs[0].State != eqasm.JobFailed || reqs[0].Err == nil {
		t.Fatalf("bad request state = %+v", reqs[0])
	}
	if reqs[1].State != eqasm.JobCompleted || reqs[1].Err != nil {
		t.Fatalf("good request state = %+v", reqs[1])
	}
	if results[1] == nil || results[1].Shots != 10 {
		t.Fatalf("good request result = %+v", results[1])
	}
}

// Concurrent Submit/Cancel/Wait across goroutines stays consistent
// (run with -race): every job lands in a terminal state, cancelled
// jobs report cancellation, completed jobs carry full results.
func TestJobLifecycleConcurrency(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cancelIt := g%2 == 1
			shots := 50
			if cancelIt {
				shots = 1_000_000 // plenty of runway for the cancel to land mid-run
			}
			job, err := sim.Submit(context.Background(),
				eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: shots}},
				eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: shots, Seed: int64(g + 1)}},
			)
			if err != nil {
				errc <- err
				return
			}
			if cancelIt {
				job.Cancel()
				job.Cancel() // idempotent
			}
			results, err := job.Wait(context.Background())
			st := job.Status()
			if !st.Terminal() {
				errc <- fmt.Errorf("goroutine %d: non-terminal state %q after Wait", g, st)
				return
			}
			if cancelIt {
				if !errors.Is(err, context.Canceled) {
					errc <- fmt.Errorf("goroutine %d: cancelled job err = %v", g, err)
				}
				return
			}
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: %v", g, err)
				return
			}
			for i, res := range results {
				if res == nil || res.Shots != shots {
					errc <- fmt.Errorf("goroutine %d request %d: result %+v", g, i, res)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// The submit ctx governs the whole batch: expiry mid-run cancels it
// with partial per-request results.
func TestSubmitContextCancelsBatch(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	job, err := sim.Submit(ctx,
		eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: 10_000_000}},
		eqasm.RunRequest{Program: prog, Options: eqasm.RunOptions{Shots: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	results, err := job.Wait(waitCtx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if job.Status() != eqasm.JobCancelled {
		t.Fatalf("status = %q", job.Status())
	}
	if results[0] == nil || results[0].Shots == 0 || results[0].Shots >= 10_000_000 {
		t.Fatalf("request 0 partial result = %+v, want some but not all shots", results[0])
	}
	if st := job.Requests()[1].State; st != eqasm.JobCancelled {
		t.Fatalf("request 1 state = %q, want cancelled (never started)", st)
	}
}

// A ctx that is already dead at submit time still yields the contract
// shapes: RunStream delivers a terminal Err (not a silent clean close)
// and Run returns a non-nil zero-shot Result alongside the error.
func TestPreCancelledContext(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(shippedPrograms(t)["bell.eqasm"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stream, err := sim.RunStream(ctx, prog, eqasm.RunOptions{Shots: 100})
	if err != nil {
		t.Fatal(err)
	}
	var terminal error
	for sr := range stream {
		if sr.Err != nil {
			terminal = sr.Err
		}
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal = %v, want context.Canceled", terminal)
	}
	res, err := sim.Run(ctx, prog, eqasm.RunOptions{Shots: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if res == nil || res.Shots != 0 {
		t.Fatalf("Run result = %+v, want non-nil zero-shot partial", res)
	}
}
