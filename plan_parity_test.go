// Plan/interpreter parity: the decode-once execution plan must be
// bit-identical to the interpreter it replaced. Every shipped fixture
// runs through both paths at fixed seeds — ideal and noisy, state
// vector and density matrix — and per-shot measurement records,
// execution stats and the aggregate histograms must match exactly.
package eqasm_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"eqasm/internal/core"
	"eqasm/internal/isa"
	"eqasm/internal/microarch"
	"eqasm/internal/plan"
	"eqasm/internal/quantum"
	"eqasm/internal/topology"
)

// shotRecord is everything observable about one shot.
type shotRecord struct {
	Meas  []microarch.MeasurementRecord
	Stats microarch.Stats
	Key   string
}

func recordShot(m *microarch.Machine) shotRecord {
	recs := m.Measurements()
	r := shotRecord{
		Meas:  append([]microarch.MeasurementRecord(nil), recs...),
		Stats: m.Stats(),
	}
	last := map[int]int{}
	qubits := []int{}
	for _, rec := range recs {
		if _, seen := last[rec.Qubit]; !seen {
			qubits = append(qubits, rec.Qubit)
		}
		last[rec.Qubit] = rec.Result
	}
	var b strings.Builder
	for _, q := range qubits {
		b.WriteByte(byte('0' + last[q]))
	}
	r.Key = b.String()
	return r
}

// runShots executes shots repetitions on a fresh system, loading the
// program through load, and returns the per-shot records plus the
// outcome histogram.
func runShots(t *testing.T, opts core.Options, src string, shots int,
	load func(*core.System, string) error) ([]shotRecord, map[string]int) {
	t.Helper()
	sys, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := load(sys, src); err != nil {
		t.Fatal(err)
	}
	var records []shotRecord
	hist := map[string]int{}
	err = sys.RunShots(shots, func(_ int, m *microarch.Machine) {
		r := recordShot(m)
		records = append(records, r)
		hist[r.Key]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return records, hist
}

func loadInterpreted(sys *core.System, src string) error {
	p, err := sys.Asm.Assemble(src)
	if err != nil {
		return err
	}
	sys.LoadInterpreted(p)
	return nil
}

func loadPlanned(sys *core.System, src string) error {
	p, err := sys.Asm.Assemble(src)
	if err != nil {
		return err
	}
	ex, err := plan.Build(p, sys.Topo, sys.OpConfig)
	if err != nil {
		return err
	}
	return sys.LoadPlan(ex)
}

func fixtureSources(t *testing.T) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "programs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(e.Name(), ".eqasm")] = string(data)
	}
	if len(out) == 0 {
		t.Fatal("no fixtures shipped")
	}
	return out
}

// fixtureTopo returns the value of a fixture's leading "# topo: <name>"
// directive ("" for the default chip). The directive must appear in the
// fixture's leading comment block.
func fixtureTopo(src string) string {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(trimmed, "# topo:"); ok {
			return strings.TrimSpace(v)
		}
		if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
			break
		}
	}
	return ""
}

// applyFixtureTopo binds opts to a fixture's declared chip. Only the
// chain<N> family is supported (the default-chip fixtures carry no
// directive).
func applyFixtureTopo(t *testing.T, opts core.Options, name string) core.Options {
	t.Helper()
	if name == "" {
		return opts
	}
	digits, ok := strings.CutPrefix(name, "chain")
	if !ok {
		t.Fatalf("fixture declares unsupported topology %q", name)
	}
	n, err := strconv.Atoi(digits)
	if err != nil {
		t.Fatalf("fixture declares unsupported topology %q", name)
	}
	topo := topology.Chain(n)
	inst := isa.ChainInstantiation(n)
	inst.PairTopology = topo
	opts.Topology = topo
	opts.Instantiation = inst
	return opts
}

// TestPlanInterpreterParity holds the plan path bit-identical to the
// interpreter on every shipped fixture: identical per-shot measurement
// records (values and timestamps), identical execution stats, and
// therefore identical histograms, for several seeds, with and without
// the calibrated noise model, on both chip simulators.
func TestPlanInterpreterParity(t *testing.T) {
	const shots = 40
	noisy := quantum.NoiseModel{
		T1Ns: 30_000, T2Ns: 22_000,
		Gate1QError: 0.0008, Gate2QError: 0.07, ReadoutError: 0.09,
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"ideal", core.Options{}},
		{"noisy", core.Options{Noise: noisy}},
		{"density", core.Options{UseDensityMatrix: true}},
		{"noisy_density", core.Options{Noise: noisy, UseDensityMatrix: true}},
	}
	for name, src := range fixtureSources(t) {
		topoName := fixtureTopo(src)
		shots, seeds := shots, []int64{1, 7, 12345}
		if topoName != "" {
			// Large-register fixtures (the chain-chip fusion workloads)
			// run the ideal state vector only — the density matrix at
			// 4^16 entries is out of reach, and noisy trajectories at
			// 2^16 amplitudes make the sweep disproportionately slow.
			// Parity is deterministic bit-equality, so a few shots carry
			// the same evidence.
			shots, seeds = 8, []int64{1, 7}
		}
		for _, cfg := range configs {
			if topoName != "" && cfg.name != "ideal" {
				continue
			}
			for _, seed := range seeds {
				t.Run(name+"/"+cfg.name, func(t *testing.T) {
					opts := applyFixtureTopo(t, cfg.opts, topoName)
					opts.Seed = seed
					ref, refHist := runShots(t, opts, src, shots, loadInterpreted)
					got, gotHist := runShots(t, opts, src, shots, loadPlanned)
					if len(got) != len(ref) {
						t.Fatalf("seed %d: plan ran %d shots, interpreter %d", seed, len(got), len(ref))
					}
					for i := range ref {
						if !reflect.DeepEqual(got[i].Meas, ref[i].Meas) {
							t.Fatalf("seed %d shot %d: measurement records diverge:\nplan: %+v\ninterp: %+v",
								seed, i, got[i].Meas, ref[i].Meas)
						}
						if got[i].Stats != ref[i].Stats {
							t.Fatalf("seed %d shot %d: stats diverge:\nplan: %+v\ninterp: %+v",
								seed, i, got[i].Stats, ref[i].Stats)
						}
					}
					if !reflect.DeepEqual(gotHist, refHist) {
						t.Fatalf("seed %d: histograms diverge:\nplan: %v\ninterp: %v", seed, gotHist, refHist)
					}
				})
			}
		}
	}
}

// TestFanPlanParity holds the pooled fan-out (the path behind the
// public Backend) bit-identical to the sequential interpreter at
// Workers == 1, and self-consistent when the plan is shared by
// concurrent workers.
func TestFanPlanParity(t *testing.T) {
	for name, src := range fixtureSources(t) {
		shots := 30
		topoName := fixtureTopo(src)
		if topoName != "" {
			shots = 8
		}
		t.Run(name, func(t *testing.T) {
			opts := applyFixtureTopo(t, core.Options{Seed: 3}, topoName)
			ref, _ := runShots(t, opts, src, shots, loadInterpreted)

			sys, err := core.NewSystem(opts)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sys.Asm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			// Plans are context-bound: lower under the pool's template
			// (FanPlan rejects plans built under another context).
			pool := core.NewSystemPool(opts)
			ex, err := pool.Plan(prog)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]shotRecord, shots)
			err = pool.FanPlan(context.Background(), ex, opts.Seed, shots, 1,
				func(shot int, m *microarch.Machine, runErr error) error {
					if runErr != nil {
						return runErr
					}
					got[shot] = recordShot(m)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if !reflect.DeepEqual(got[i].Meas, ref[i].Meas) || got[i].Stats != ref[i].Stats {
					t.Fatalf("shot %d diverges from sequential interpreter:\nfan: %+v\nref: %+v",
						i, got[i], ref[i])
				}
			}

			// Concurrent workers share one plan; worker 0's shot range
			// stays bit-identical to its sequential stream.
			perWorker := (shots + 3) / 4
			conc := make([]shotRecord, shots)
			err = pool.FanPlan(context.Background(), ex, opts.Seed, shots, 4,
				func(shot int, m *microarch.Machine, runErr error) error {
					if runErr != nil {
						return runErr
					}
					conc[shot] = recordShot(m)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < perWorker; i++ {
				if !reflect.DeepEqual(conc[i].Meas, ref[i].Meas) {
					t.Fatalf("worker 0 shot %d diverges under fan-out", i)
				}
			}
		})
	}
}
