// End-to-end tests for the OpenQASM 2.0 front end: every shared
// fixture circuit (testdata/circuits/*.cq with a *.qasm twin) must
// compile to byte-identical eQASM through either front end and produce
// identical fixed-seed histograms, both in process and submitted to
// the HTTP job service with format "openqasm"; a parametric .qasm
// sweep over HTTP must share one cached program and one execution plan.
package eqasm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"eqasm"
	"eqasm/internal/httpapi"
	"eqasm/internal/service"
)

// conformancePairs are the golden cross-front-end fixtures: the same
// circuit in both syntaxes, with the chip it targets and any symbolic
// parameters to bind at run time.
var conformancePairs = []struct {
	name   string
	topo   string
	params map[string]float64
}{
	{name: "bell", topo: "twoqubit"},
	{name: "ghz", topo: "surface7"},
	{name: "qec", topo: "surface7"},
	{name: "rz_sweep", topo: "twoqubit", params: map[string]float64{"theta": 1.234567}},
}

func TestFrontEndConformance(t *testing.T) {
	for _, tc := range conformancePairs {
		t.Run(tc.name, func(t *testing.T) {
			cq := loadFixture(t, "testdata", "circuits", tc.name+".cq")
			oq := loadFixture(t, "testdata", "circuits", tc.name+".qasm")
			opts := []eqasm.Option{eqasm.WithTopology(tc.topo), eqasm.WithSeed(7)}

			fromCQ, err := eqasm.CompileCircuit(cq, opts...)
			if err != nil {
				t.Fatalf("cqasm front end: %v", err)
			}
			fromOQ, err := eqasm.CompileOpenQASM(oq, opts...)
			if err != nil {
				t.Fatalf("openqasm front end: %v", err)
			}
			if fromCQ.Text() != fromOQ.Text() {
				t.Fatalf("emitted eQASM differs between front ends:\n-- cqasm --\n%s\n-- openqasm --\n%s",
					fromCQ.Text(), fromOQ.Text())
			}

			sim, err := eqasm.NewSimulator(opts...)
			if err != nil {
				t.Fatal(err)
			}
			ropts := eqasm.RunOptions{Shots: 100, Seed: 9, Params: tc.params}
			a, err := sim.Run(context.Background(), fromCQ, ropts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sim.Run(context.Background(), fromOQ, ropts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Histogram, b.Histogram) {
				t.Fatalf("fixed-seed histograms differ: cqasm %v, openqasm %v", a.Histogram, b.Histogram)
			}
		})
	}
}

// TestParseOpenQASMPublicAPI pins the public surface: ParseOpenQASM
// returns the same Circuit as ParseCircuit does for the twin fixture,
// faults carry *AssembleError diagnostics, and DetectFormat sniffs all
// three languages.
func TestParseOpenQASMPublicAPI(t *testing.T) {
	cq := loadFixture(t, "testdata", "circuits", "bell.cq")
	oq := loadFixture(t, "testdata", "circuits", "bell.qasm")
	a, err := eqasm.ParseCircuit(cq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eqasm.ParseOpenQASM(oq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Gates, b.Gates) || a.NumQubits != b.NumQubits {
		t.Fatalf("front ends disagree on the Bell circuit:\ncqasm    %+v\nopenqasm %+v", a, b)
	}

	_, err = eqasm.ParseOpenQASM("OPENQASM 2.0;\nqreg q[1];\nwobble q[0];\n")
	var ae *eqasm.AssembleError
	if !asAssembleError(err, &ae) || len(ae.Diagnostics) != 1 || ae.Diagnostics[0].Line != 3 {
		t.Fatalf("parse fault = %v, want *AssembleError with one line-3 diagnostic", err)
	}

	asmSrc := loadFixture(t, "testdata", "programs", "bell.eqasm")
	for src, want := range map[string]string{
		oq:     eqasm.FormatOpenQASM,
		cq:     eqasm.FormatCQASM,
		asmSrc: eqasm.FormatEQASM,
	} {
		if got := eqasm.DetectFormat(src); got != want {
			t.Errorf("DetectFormat = %q, want %q for:\n%.60s", got, want, src)
		}
	}
}

// asAssembleError keeps the errors.As plumbing out of the test body.
func asAssembleError(err error, target **eqasm.AssembleError) bool {
	if err == nil {
		return false
	}
	ae, ok := err.(*eqasm.AssembleError)
	if ok {
		*target = ae
	}
	return ok
}

func TestOpenQASMJobViaHTTPService(t *testing.T) {
	cq := loadFixture(t, "testdata", "circuits", "bell.cq")
	oq := loadFixture(t, "testdata", "circuits", "bell.qasm")

	svc, err := service.New(service.Config{
		Workers:    2,
		BatchShots: 16,
		Machine:    []eqasm.Option{eqasm.WithTopology("twoqubit")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	defer ts.Close()

	const shots = 200
	submit := func(body map[string]any) map[string]int {
		t.Helper()
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Result *struct {
				Shots     int            `json:"shots"`
				Histogram map[string]int `json:"histogram"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || jr.Status != "completed" || jr.Result == nil {
			t.Fatalf("job failed: HTTP %d status=%q error=%q", resp.StatusCode, jr.Status, jr.Error)
		}
		return jr.Result.Histogram
	}

	got := submit(map[string]any{
		"source": oq, "format": "openqasm", "shots": shots, "seed": 23, "wait": true,
	})
	want := submit(map[string]any{
		"source": cq, "format": "cqasm", "shots": shots, "seed": 23, "wait": true,
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("openqasm job histogram %v != cqasm twin histogram %v", got, want)
	}
	if got["00"]+got["11"] != shots {
		t.Fatalf("Bell correlations broken: %v", got)
	}

	// The two front ends cache in disjoint key spaces (two entries), and
	// a second submission of the same OpenQASM text hits the cache.
	if st := svc.Stats(); st.CacheEntries != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per front end)", st.CacheEntries)
	}
	before := svc.Stats().CacheHits
	submit(map[string]any{
		"source": oq, "format": "openqasm", "shots": shots, "seed": 23, "wait": true,
	})
	if after := svc.Stats().CacheHits; after != before+1 {
		t.Fatalf("cache hits %d -> %d; openqasm resubmission did not hit the program cache", before, after)
	}

	// OpenQASM parse faults surface as positioned diagnostics over the
	// wire.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"source": "OPENQASM 2.0;\nqreg q[1];\nwobble q[0];", "format": "openqasm"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains([]byte(e.Error), []byte("line 3")) {
		t.Fatalf("parse fault: HTTP %d error %q, want 400 with a line-3 diagnostic", resp.StatusCode, e.Error)
	}
}

// TestOpenQASMParamSweepOverHTTP drives a parametric .qasm sweep
// through the HTTP wire as one batch with format "openqasm": every
// point must match a local run of the same compiled program with the
// same binding, and the whole sweep must share exactly one cached
// program and one execution plan (the /v1/stats plan-cache counters —
// the ISSUE's acceptance probe).
func TestOpenQASMParamSweepOverHTTP(t *testing.T) {
	const points = 8
	const shots = 16
	oq := loadFixture(t, "testdata", "circuits", "rz_sweep.qasm")

	svc, err := service.New(service.Config{
		Workers:    2,
		BatchShots: 32, // one batch per request: local Run comparison is exact
		Machine:    []eqasm.Option{eqasm.WithTopology("twoqubit"), eqasm.WithSeed(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	defer ts.Close()

	reqs := make([]map[string]any, points)
	grid := make([]float64, points)
	for i := range reqs {
		grid[i] = 2 * math.Pi * float64(i) / points
		reqs[i] = map[string]any{
			"source": oq, "format": "openqasm", "shots": shots, "seed": 9,
			"params": map[string]float64{"theta": grid[i]},
		}
	}
	payload, err := json.Marshal(map[string]any{"requests": reqs, "wait": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var br struct {
		Status   string `json:"status"`
		Error    string `json:"error"`
		Requests []struct {
			Histogram map[string]int `json:"histogram"`
			CacheHit  bool           `json:"cache_hit"`
		} `json:"requests"`
	}
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || br.Status != "completed" || len(br.Requests) != points {
		t.Fatalf("batch failed: HTTP %d status=%q error=%q (%d requests)",
			resp.StatusCode, br.Status, br.Error, len(br.Requests))
	}

	// Local reference: the same parametric program, bound per point.
	prog, err := eqasm.CompileOpenQASM(oq, eqasm.WithTopology("twoqubit"), eqasm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithTopology("twoqubit"), eqasm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, theta := range grid {
		want, err := sim.Run(context.Background(), prog, eqasm.RunOptions{
			Shots: shots, Seed: 9, Params: map[string]float64{"theta": theta},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(br.Requests[i].Histogram, want.Histogram) {
			t.Fatalf("point %d (theta=%v): remote %v != local %v",
				i, theta, br.Requests[i].Histogram, want.Histogram)
		}
		if hit := br.Requests[i].CacheHit; hit != (i > 0) {
			t.Fatalf("point %d cache_hit = %t; a sweep shares one cached program", i, hit)
		}
	}

	// The acceptance probe: one plan-cache entry for the whole sweep,
	// asserted through the wire.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		CacheMisses     int64 `json:"cache_misses"`
		CacheHits       int64 `json:"cache_hits"`
		CacheEntries    int   `json:"cache_entries"`
		PlanCacheMisses int64 `json:"plan_cache_misses"`
		PlanCacheHits   int64 `json:"plan_cache_hits"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("program cache: %d misses, %d entries, want 1 and 1", st.CacheMisses, st.CacheEntries)
	}
	if st.CacheHits != points-1 {
		t.Fatalf("program cache hits = %d, want %d", st.CacheHits, points-1)
	}
	if st.PlanCacheMisses != 1 {
		t.Fatalf("plan_cache_misses = %d, want 1 (one plan for the whole sweep)", st.PlanCacheMisses)
	}
	if st.PlanCacheHits != points-1 {
		t.Fatalf("plan_cache_hits = %d, want %d", st.PlanCacheHits, points-1)
	}
}
