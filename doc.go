// Package eqasm is a from-scratch Go reproduction of "eQASM: An
// Executable Quantum Instruction Set Architecture" (X. Fu et al., HPCA
// 2019): the eQASM instruction set and its 32-bit instantiation for a
// seven-qubit superconducting processor, an assembler and disassembler,
// the QuMA_v2 control microarchitecture that executes it, the QuMIS
// baseline, the compiler backend and benchmarks regenerating the Fig. 7
// design-space exploration, and the full Section 5 experiment suite on a
// simulated transmon chip.
//
// On top of the paper's stack sits a serving layer, internal/service:
// a concurrent job-execution engine that assembles each submitted
// program once (content-hash cache), fans a job's shots out as batches
// over a bounded pool of workers with pooled, reseedable QuMA_v2
// machines, and aggregates measurement histograms. cmd/eqasm-serve
// exposes it over HTTP (POST /v1/jobs, GET /v1/jobs/{id}, GET
// /v1/stats, GET /healthz) with priorities, cancellation and graceful
// shutdown.
//
// The implementation lives under internal/; see README.md for the
// repository map, the service architecture and the HTTP API, and the
// command-line tools under cmd/. bench_test.go in this directory
// regenerates every table and figure of the paper's evaluation and
// benchmarks the serving layer's throughput and submit latency.
package eqasm
