// Package eqasm is a from-scratch Go reproduction of "eQASM: An
// Executable Quantum Instruction Set Architecture" (X. Fu et al., HPCA
// 2019) — and this package is its public front door: one coherent,
// context-aware API over the assembler, the compiler backend, the
// QuMA_v2 microarchitecture simulator and the job service.
//
// # Programs
//
// Assemble parses eQASM source, Compile lowers a hardware-independent
// Circuit, CompileCircuit parses and compiles cQASM circuit text,
// CompileOpenQASM does the same for OpenQASM 2.0 (ParseCircuit and
// ParseOpenQASM stop after parsing; DetectFormat sniffs which language
// a source text is), and LoadBinary decodes a 32-bit
// instruction image. All of them return a *Program bound to its
// instruction-set context — the chip topology, operation configuration
// and binary instantiation selected by the same functional options
// (WithTopology, WithHardwareConfig, WithInstantiation) — so encoding
// (Bytes), listing (Text) and Disassemble stay coherent with assembly,
// exactly as the paper's Section 3.2 requires of the shared operation
// configuration. Assembly and circuit-parse faults surface as
// *AssembleError with per-diagnostic line and column; execution faults
// as *RuntimeError with PC and cycle.
//
// # Compilation pipeline
//
// Compile, CompileCircuit and CompileOpenQASM drive the paper's Fig. 1
// backend as a staged pass pipeline over a typed circuit IR:
//
//	parse (cQASM / OpenQASM) / lift → map → schedule → pack → regalloc → timing → emit
//
// The cQASM front end reads a v1.0 subset — qubit declarations,
// single- and two-qubit gates, measurements, index lists/ranges
// (x q[0,2], y q[0:3], measure_all) and parallel { g | g } bundles.
// The OpenQASM front end reads a 2.0 subset — the OPENQASM 2.0;
// header, qreg/creg declarations, the primitive U(θ,φ,λ)/CX gates plus
// the qelib1.inc sugar (h x y z s sdg t tdg rx ry rz cx cz swap id u1
// u2 u3, lowered at parse time), single and whole-register measure,
// and barrier (validated, but lowering to no IR: the pipeline never
// reorders gates that share a qubit, so the fence already holds).
// Both lower to the same IR, so the same circuit in either syntax
// compiles to byte-identical eQASM, and
// every later stage is a functional option: WithInitialLayout
// enables the topology-aware mapping pass (SWAP insertion along
// coupling-graph shortest paths), WithSchedule picks ASAP or ALAP,
// WithSOMQ turns on single-operation-multiple-qubit packing, and the
// Section 4.2 design knobs are first class — WithTimingSpec chooses
// how the schedule's timing is made explicit ("ts3", the adopted
// method, hides short intervals in the bundle's PI field; "ts1"
// spends a QWAIT per timing point), WithWPI narrows the PI width, and
// WithVLIWWidth bounds operations per bundle word. The design-space
// instruction-counting mode of Fig. 7 observes the same pipeline
// instead of running a parallel code path.
//
// # Backends
//
// A Backend executes bound programs; Submit is the primitive and Run /
// RunStream are sugar over a one-request batch:
//
//	Submit(ctx, RunRequest{...}, ...)   → *Job (Wait/Results/Status/Cancel/Stream)
//	Run(ctx, p, RunOptions{Shots: 1e3}) → *Result (histogram, stats, totals)
//	RunStream(ctx, p, opts)             → <-chan ShotResult
//
// NewSimulator is the in-process implementation: pooled, reseedable
// cycle-level QuMA_v2 machines, shots fanned over workers, ctx checked
// between shots. With Workers == 1 and a fixed seed a run is
// bit-identical to the classic sequential shot loop. NewClient is the
// remote implementation, speaking the eqasm-serve HTTP API; both
// satisfy the same interface, so code switches between local
// simulation and a serving fleet without rewiring. NewControlledJob
// is the extension point for Backend implementations outside this
// package: it hands an external driver the same Job handle with its
// lifecycle exposed (the sharded serving tier in internal/coordinator
// — cmd/eqasm-coord — is built on it, routing batches across worker
// pools by content-hash affinity with a durable write-ahead log).
//
// Three chip simulators sit under the Simulator, selected by
// WithBackend or per run by RunOptions.Backend ("auto",
// "statevector", "densitymatrix", "stabilizer"):
//
//   - the state vector (default) simulates arbitrary gates up to the
//     26-qubit memory wall;
//   - the density matrix (WithDensityMatrix) adds exact open-system
//     noise at half the qubit reach;
//   - the stabilizer tableau runs Clifford circuits (H, Paulis, ±90°
//     rotations, S, CZ, CNOT, Z measurements) at thousands of qubits
//     via Gottesman–Knill — the chain<N> topology family (WithTopology
//     ("chain1024")) pairs with it.
//
// Under "auto" a noiseless program whose execution plan is
// Clifford-only routes to the tableau; anything else falls back to
// the state vector (or density matrix when configured). Both
// measurement-sampling paths draw one uniform variate per
// measurement, so a seeded run produces bit-identical outcomes on
// either backend. Result.Backend names the simulator that ran, and
// Result.GateProfile counts the plan's instruction sites per kernel
// kind. Forcing "stabilizer" onto a non-Clifford program fails with a
// *RuntimeError at the offending gate.
//
// Execution options (WithSeed, WithNoise, WithCalibratedNoise,
// WithDensityMatrix, WithDeviceTrace, WithShots, WithWorkers)
// configure backends; per-request RunOptions override shots, seed and
// fan-out.
//
// # Jobs and batches
//
// Submit takes any number of RunRequests — program, per-request
// RunOptions, optional caller tag — and returns immediately with a
// *Job: a future over one Result per request with live per-request
// status (Requests), blocking collection (Wait, or Done + Results),
// cancellation (Cancel, and the Submit ctx governs the whole batch)
// and a live result feed (Stream; attach before the results you care
// about complete). Every request executes exactly as an individual Run
// would — its own shots, seed and worker fan-out, with worker w of a
// request running at the request's seed + w*SeedStride — so a batch
// of N requests is bit-identical per request to N individual Run
// calls; a failing request fails alone and its siblings still run.
// That makes batches the natural unit for sweeps: seed grids, design
// knob grids, multi-circuit workloads.
//
// # Parametric circuits
//
// Rotations (rx, ry, rz) take a literal angle in radians or a named
// symbolic parameter — rx q[0], %theta in cQASM, rx(%theta) q[0] in
// OpenQASM. A parametric circuit
// compiles once into a plan whose symbolic sites are parameter slots;
// Program.Params lists the names. Each request then supplies a bind
// point via RunRequest.Params (or RunOptions.Params — the request map
// wins when both are set): binding builds the handful of concrete gate
// matrices for that point and shares everything else in the plan
// immutably, so a 1000-point sweep pays one compile and 1000 cheap
// binds instead of 1000 compiles. A bound run is bit-identical to
// compiling the same circuit with the literal baked in. Missing,
// unknown and non-finite (NaN/±Inf) values are rejected before any
// shot runs, and under Backend "auto" the Clifford check happens per
// bound point (theta = π routes to the stabilizer tableau, π/4 to the
// state vector). Over the Client the bind point travels as a
// per-request params field and the service's program cache keys on
// circuit structure only — every sweep point shares one cache entry
// and one plan.
//
// On the Simulator the batch runs on an in-process driver goroutine
// over the machine pool. On the Client the batch travels as one POST
// /v1/batches round-trip and the service admits, queues and retires it
// as one unit, returning per-request histograms, per-shot stats and
// summed TotalStats over the wire; the Job handle polls at the
// WithPollInterval cadence. Result.Stats holds the last shot's
// counters (a representative sample), Result.TotalStats the sum over
// every executed shot.
//
// # Execution pipeline
//
// Execution is layered assemble → plan → fan-out. A Program is lowered
// once into a decode-once execution plan — operands pre-resolved,
// microcode looked up, SMIS/SMIT target masks expanded, gates
// classified onto kernel-specialized state-vector paths, durations
// precomputed — and every shot on every pooled machine replays the
// shared read-only plan; the timing-critical loop performs table walks
// only, the paper's central architectural argument. The plan is built
// lazily on the first run (or eagerly via Program.Prepare, which
// serving layers call at submit time so cached programs plan exactly
// once) and is bit-identical at a fixed seed to the interpreter it
// replaced.
//
// Plan building also runs gate fusion over the lowered stream (default
// on; WithFusion and RunOptions.Fusion switch it): runs of adjacent
// single-qubit gates on one qubit coalesce into one precomposed 2×2
// kernel, single-qubit gates flanking a two-qubit gate on the same
// pair fold into its 4×4, and the products are re-classified so they
// still land on the specialized diagonal/antidiagonal/permutation/
// controlled-phase kernels. The state-vector hot loop then pays one
// amplitude pass per fused kernel instead of per gate. Fusion stops at
// measurements, feedback-conditional gates, symbolic parameter slots
// (static runs around a slot still fuse), control-flow joins and
// unknown target registers, and the machine applies the annotations
// only where they are exact — built-in state-vector or density-matrix
// backend under a zero noise model — so fixed-seed results are
// identical with fusion on or off. Result.GateProfile reports the
// kernels actually executed, including the fused kinds and the
// ProfileFusionFused / ProfileFusionTotal site ratio.
//
// # The stack underneath
//
// The implementation lives under internal/: the eQASM instruction set
// and its 32-bit instantiation (isa), assembler and disassembler
// (asm), the cQASM and OpenQASM 2.0 circuit front ends (cqasm,
// openqasm, sharing the srcerr diagnostic shape), the typed circuit IR
// the compiler passes transform (ir), the pass-pipeline compiler backend
// (compiler), the decode-once execution-plan layer (plan), the QuMA_v2
// control microarchitecture (microarch), the simulated transmon chip
// (quantum), the QuMIS baseline (qumis), the Section 5 experiment
// suite (experiments), the concurrent job service (service), its
// HTTP front end (httpapi), the sharded serving coordinator
// (coordinator) and its write-ahead batch journal (wal). The cmd/
// tools and examples/ programs
// consume only this package. bench_test.go regenerates every table and
// figure of the paper's evaluation and benchmarks the serving layer.
package eqasm
