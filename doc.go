// Package eqasm is a from-scratch Go reproduction of "eQASM: An
// Executable Quantum Instruction Set Architecture" (X. Fu et al., HPCA
// 2019): the eQASM instruction set and its 32-bit instantiation for a
// seven-qubit superconducting processor, an assembler and disassembler,
// the QuMA_v2 control microarchitecture that executes it, the QuMIS
// baseline, the compiler backend and benchmarks regenerating the Fig. 7
// design-space exploration, and the full Section 5 experiment suite on a
// simulated transmon chip.
//
// The implementation lives under internal/; see README.md for the map,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's
// evaluation.
package eqasm
