package eqasm_test

import (
	"errors"
	"testing"

	"eqasm"
)

// FuzzParseCircuit drives the public cQASM entry point with arbitrary
// input: parsing must never panic, every rejection must be an
// *AssembleError whose diagnostics all carry a line (and the compile
// path over accepted circuits must not panic either). CI runs this as
// a fuzz smoke step (go test -fuzz=FuzzParseCircuit -fuzztime=20s .).
func FuzzParseCircuit(f *testing.F) {
	seeds := []string{
		"version 1.0\nqubits 3\nh q[0]\ncnot q[0], q[2]\nmeasure q[0]\nmeasure q[2]\n",
		"qubits 5\n{ x q[0] | y q[1] }\nswap q[0], q[4]\nmeasure_all\n",
		"qubits 2\nx q[0:1]\nmeasure q[0,1]\n",
		"qubits 64\nx q[63]\n",
		"version 2.0\nqubits 1\n",
		"x q[0]\n",
		"qubits 2\nrx q[0], 3.14\n",
		"qubits 3\nrx q[0], %theta\nry q[2], %theta\ncnot q[0], q[2]\nmeasure q[0,2]\n",
		"qubits 2\nrz q[0], -0.5\nrx q[1], 1.5e-3\n",
		"qubits 2\nrx q[0], %\n",
		"qubits 2\nrx q[0], 1.5.7\n",
		"qubits 2\ncnot q[0], q[0]\n",
		"{|}\n",
		"qubits 2\nx q[",
		"qubits 2\n# just a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := eqasm.ParseCircuit(src)
		if err != nil {
			var ae *eqasm.AssembleError
			if !errors.As(err, &ae) || len(ae.Diagnostics) == 0 {
				t.Fatalf("rejection is not an *AssembleError with diagnostics: %v", err)
			}
			for _, d := range ae.Diagnostics {
				if d.Line <= 0 {
					t.Fatalf("diagnostic without a line number: %+v in %v", d, err)
				}
			}
			return
		}
		if c == nil || c.NumQubits < 1 {
			t.Fatalf("accepted a circuit with no qubits: %+v", c)
		}
		// Accepted circuits must also compile without panicking; chip
		// constraints may legally reject them (too many qubits, pairs
		// the coupling graph lacks), so only the absence of a crash is
		// asserted.
		_, _ = eqasm.CompileCircuit(src, eqasm.WithSOMQ())
	})
}

// FuzzParseOpenQASM drives the public OpenQASM 2.0 entry point with
// arbitrary input, under the same contract as FuzzParseCircuit: no
// panic anywhere, every rejection an *AssembleError whose diagnostics
// all carry a line, and no crash compiling whatever parses. CI runs
// this as a fuzz smoke step (go test -fuzz=FuzzParseOpenQASM
// -fuzztime=20s .).
func FuzzParseOpenQASM(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nh q[0];\ncx q[0], q[2];\nmeasure q[0] -> c[0];\nmeasure q[2] -> c[1];\n",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nU(pi/2, 0, pi) q[0];\nCX q[0], q[1];\nmeasure q -> c;\n",
		"OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nrx(%theta) q[0];\nrz(%theta) q[2];\ncx q[0], q[2];\nbarrier q;\nmeasure q[0] -> c[0];\n",
		"OPENQASM 2.0;\nqreg a[2]; qreg b[2]; creg c[4];\nswap a[0], b[1];\ncx a, b;\nmeasure a -> c;\n",
		"OPENQASM 2.0;\nqreg q[1];\nu3(0.1, 0.2, 0.3) q[0];\nu2(0.1, 0.2) q[0];\nu1(-pi/4) q[0];\nsdg q[0];\ntdg q[0];\n",
		"OPENQASM 3.0;\nqreg q[1];\n",
		"OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\nrz(1/0) q[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\nif (c==0) x q[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\nx q[",
		"qreg q[1];\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := eqasm.ParseOpenQASM(src)
		if err != nil {
			var ae *eqasm.AssembleError
			if !errors.As(err, &ae) || len(ae.Diagnostics) == 0 {
				t.Fatalf("rejection is not an *AssembleError with diagnostics: %v", err)
			}
			for _, d := range ae.Diagnostics {
				if d.Line <= 0 {
					t.Fatalf("diagnostic without a line number: %+v in %v", d, err)
				}
			}
			return
		}
		if c == nil || c.NumQubits < 1 {
			t.Fatalf("accepted a circuit with no qubits: %+v", c)
		}
		_, _ = eqasm.CompileOpenQASM(src, eqasm.WithSOMQ())
	})
}
