package eqasm_test

import (
	"errors"
	"testing"

	"eqasm"
)

// FuzzParseCircuit drives the public cQASM entry point with arbitrary
// input: parsing must never panic, every rejection must be an
// *AssembleError whose diagnostics all carry a line (and the compile
// path over accepted circuits must not panic either). CI runs this as
// a fuzz smoke step (go test -fuzz=FuzzParseCircuit -fuzztime=20s .).
func FuzzParseCircuit(f *testing.F) {
	seeds := []string{
		"version 1.0\nqubits 3\nh q[0]\ncnot q[0], q[2]\nmeasure q[0]\nmeasure q[2]\n",
		"qubits 5\n{ x q[0] | y q[1] }\nswap q[0], q[4]\nmeasure_all\n",
		"qubits 2\nx q[0:1]\nmeasure q[0,1]\n",
		"qubits 64\nx q[63]\n",
		"version 2.0\nqubits 1\n",
		"x q[0]\n",
		"qubits 2\nrx q[0], 3.14\n",
		"qubits 3\nrx q[0], %theta\nry q[2], %theta\ncnot q[0], q[2]\nmeasure q[0,2]\n",
		"qubits 2\nrz q[0], -0.5\nrx q[1], 1.5e-3\n",
		"qubits 2\nrx q[0], %\n",
		"qubits 2\nrx q[0], 1.5.7\n",
		"qubits 2\ncnot q[0], q[0]\n",
		"{|}\n",
		"qubits 2\nx q[",
		"qubits 2\n# just a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := eqasm.ParseCircuit(src)
		if err != nil {
			var ae *eqasm.AssembleError
			if !errors.As(err, &ae) || len(ae.Diagnostics) == 0 {
				t.Fatalf("rejection is not an *AssembleError with diagnostics: %v", err)
			}
			for _, d := range ae.Diagnostics {
				if d.Line <= 0 {
					t.Fatalf("diagnostic without a line number: %+v in %v", d, err)
				}
			}
			return
		}
		if c == nil || c.NumQubits < 1 {
			t.Fatalf("accepted a circuit with no qubits: %+v", c)
		}
		// Accepted circuits must also compile without panicking; chip
		// constraints may legally reject them (too many qubits, pairs
		// the coupling graph lacks), so only the absence of a crash is
		// asserted.
		_, _ = eqasm.CompileCircuit(src, eqasm.WithSOMQ())
	})
}
