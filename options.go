package eqasm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"eqasm/internal/compiler"
	"eqasm/internal/hwconf"
	"eqasm/internal/isa"
	"eqasm/internal/plan"
	"eqasm/internal/quantum"
	"eqasm/internal/topology"
)

// Option configures the eQASM stack at any of its entry points:
// Assemble, Disassemble, LoadBinary, Compile, Operations and
// NewSimulator all accept the same option set and use the fields
// relevant to them. Options that select the instruction-set context
// (topology, hardware configuration, instantiation) determine what a
// program means; options that select the execution context (noise,
// seed, density matrix, tracing) determine how a Simulator runs it.
type Option func(*config)

// config is the resolved option set.
type config struct {
	topoName string
	instName string
	// hwTopo/hwOpCfg are set by WithHardwareConfig (loaded and interned
	// at option-application time, so noise precedence is last-wins).
	hwTopo  *topology.Topology
	hwOpCfg *isa.OpConfig

	noise       NoiseModel
	seed        int64
	density     bool
	backendName string
	fusionOff   bool
	trace       bool
	mock        func(qubit, index int) int

	shots   int
	workers int

	schedule  string
	initWait  int
	somq      bool
	layout    []int
	spec      compiler.TimingSpec
	specSet   bool
	wpi       int
	vliwWidth int

	err error
}

func (c *config) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func newConfig(opts []Option) (*config, error) {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.shots == 0 {
		c.shots = 1
	}
	if c.workers == 0 {
		c.workers = 1
	}
	return c, nil
}

// WithTopology selects a named chip topology. Topologies lists the
// built-in names; the default is "twoqubit", the paper's Section 5
// validation chip. Selecting "surface17" also switches to the
// pair-list SMIT instantiation unless WithInstantiation overrides it.
//
// The parameterized family "chain<N>" (e.g. "chain1024", 2 <= N <=
// 4096) is a nearest-neighbour chain of N qubits with a matching
// wide-mask instantiation: registers this size exceed the state-vector
// simulator, so chain chips pair with the stabilizer backend for
// Clifford workloads, and programs for chains past 64 qubits have no
// 32-bit binary encoding (they assemble and execute directly).
func WithTopology(name string) Option {
	return func(c *config) { c.topoName = name }
}

// WithHardwareConfig loads the chip topology, operation configuration
// and (if present) noise model from a hardware configuration file,
// overriding WithTopology. The file is read once per process and
// interned by path, so programs assembled under the same file share
// one instruction-set context (and therefore one machine pool).
//
// Noise precedence is positional, like every noise option: a noise
// model in the file applies at this option's place in the list, so put
// WithNoise before WithHardwareConfig to provide a fallback the file
// may override, or after it to force a model regardless of the file.
func WithHardwareConfig(path string) Option {
	return func(c *config) {
		ent, err := internHardwareConfig(path)
		if err != nil {
			c.fail("%v", err)
			return
		}
		c.hwTopo, c.hwOpCfg = ent.topo, ent.opCfg
		if ent.noise != nil {
			c.noise = *ent.noise
		}
	}
}

// WithInstantiation selects a named binary instantiation: "default"
// (the paper's 32-bit seven-qubit binding, Config 9 with VLIW width 2)
// or "surface17" (17-bit qubit masks and explicit SMIT address pairs).
func WithInstantiation(name string) Option {
	return func(c *config) { c.instName = name }
}

// WithSeed fixes the base random seed driving measurement sampling and
// trajectory noise. Executions with the same seed, program and worker
// count are bit-identical.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithNoise parameterises the simulated chip; the zero NoiseModel is an
// ideal chip (the default). Noise options apply in order: the last of
// WithNoise, WithCalibratedNoise and a noise-carrying
// WithHardwareConfig wins.
func WithNoise(n NoiseModel) Option {
	return func(c *config) { c.noise = n }
}

// WithCalibratedNoise applies CalibratedNoise, the Section 5 error
// budget of the paper's seven-qubit transmon processor.
func WithCalibratedNoise() Option {
	return func(c *config) { c.noise = CalibratedNoise() }
}

// WithDensityMatrix selects the exact density-matrix chip simulator
// instead of the trajectory state-vector backend (small registers only).
// It is shorthand for WithBackend("densitymatrix") at auto-selection
// time.
func WithDensityMatrix() Option {
	return func(c *config) { c.density = true }
}

// Backend names accepted by WithBackend and RunOptions.Backend. A
// Result reports which one a run actually executed on.
const (
	// BackendAuto picks per program: the density matrix when
	// WithDensityMatrix is set, the state vector when noise is
	// configured, the stabilizer tableau for noiseless Clifford-only
	// programs, and the state vector otherwise. This is the default.
	BackendAuto = "auto"
	// BackendStateVector is the trajectory state-vector simulator
	// (any gate set, registers up to 26 qubits).
	BackendStateVector = "statevector"
	// BackendDensityMatrix is the exact density-matrix simulator
	// (any gate set, small registers only).
	BackendDensityMatrix = "densitymatrix"
	// BackendStabilizer is the Gottesman–Knill tableau simulator:
	// Clifford circuits at thousands of qubits, noiseless chips only.
	// A non-Clifford operation is a runtime fault.
	BackendStabilizer = "stabilizer"
)

// validBackendName reports whether name is accepted by WithBackend or
// RunOptions.Backend ("" means auto).
func validBackendName(name string) bool {
	switch name {
	case "", BackendAuto, BackendStateVector, BackendDensityMatrix, BackendStabilizer:
		return true
	}
	return false
}

// WithBackend selects the chip-simulation backend by name: "auto" (the
// default), "statevector", "densitymatrix" or "stabilizer". Auto
// selection routes noiseless Clifford-only programs to the stabilizer
// tableau — which simulates 1000+-qubit Clifford circuits in polynomial
// time — and everything else to the state vector, preserving the exact
// seeded measurement streams either way. RunOptions.Backend overrides
// this per run.
func WithBackend(name string) Option {
	return func(c *config) {
		if !validBackendName(name) {
			c.fail("eqasm: unknown backend %q (valid: auto, statevector, densitymatrix, stabilizer)", name)
			return
		}
		c.backendName = name
	}
}

// WithFusion enables or disables plan-time gate fusion (default on).
// Fusion coalesces runs of adjacent single-qubit gates — and
// single-qubit gates flanking a two-qubit gate on the same pair — into
// one precomposed kernel at plan-build time, so the state-vector hot
// loop pays per fused kernel instead of per gate. It is applied only
// where it is exact (built-in state-vector or density-matrix backend,
// zero noise model) and never changes results: fixed-seed runs are
// identical with fusion on or off. Disable it for A/B comparisons and
// per-gate profiling; RunOptions.Fusion overrides this per run.
func WithFusion(enabled bool) Option {
	return func(c *config) { c.fusionOff = !enabled }
}

// Fusion settings accepted by RunOptions.Fusion ("" uses the
// Simulator's WithFusion setting, which defaults to on).
const (
	// FusionOn enables plan-time gate fusion for the run.
	FusionOn = "on"
	// FusionOff disables plan-time gate fusion for the run.
	FusionOff = "off"
)

// Gate-profile counter keys reported by fused runs (Result.GateProfile,
// alongside the per-kernel "fused.gate1.*" / "fused.gate2.*" kinds).
// ProfileFusionFused / ProfileFusionTotal is the fused/unfused site
// ratio of the plan's gate sites.
const (
	// ProfileFusionTotal counts the gate sites fusion considered.
	ProfileFusionTotal = plan.ProfileFusionTotal
	// ProfileFusionFused counts the sites that joined a fused kernel.
	ProfileFusionFused = plan.ProfileFusionFused
	// ProfileFusionElided counts the sites whose standalone kernel
	// application was absorbed into a fused kernel (fused sites minus
	// emitted kernels).
	ProfileFusionElided = plan.ProfileFusionElided
)

// WithDeviceTrace records the device-operation trace (the simulated
// oscilloscope of the paper's CFC verification); Results and
// ShotResults then carry the rendered trace.
func WithDeviceTrace() Option {
	return func(c *config) { c.trace = true }
}

// WithMockMeasure replaces measurement discrimination with scripted
// results: fn receives the qubit and its 0-based measurement count and
// returns the bit to report — the paper's UHFQC mock-result mode. fn
// must be safe for concurrent use when shots fan out over workers.
func WithMockMeasure(fn func(qubit, index int) int) Option {
	return func(c *config) { c.mock = fn }
}

// WithShots sets the default repetition count a Backend uses when
// RunOptions.Shots is zero (default 1).
func WithShots(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("eqasm: negative shot count %d", n)
			return
		}
		c.shots = n
	}
}

// WithWorkers sets the default shot fan-out of a Simulator (default 1,
// which keeps runs bit-identical to sequential execution; worker w runs
// its shot range on an independent machine seeded seed + w*SeedStride).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("eqasm: negative worker count %d", n)
			return
		}
		c.workers = n
	}
}

// WithSchedule selects the Compile scheduling discipline: "asap" (the
// default) or "alap".
func WithSchedule(name string) Option {
	return func(c *config) {
		switch name {
		case "asap", "alap":
			c.schedule = name
		default:
			c.fail("eqasm: unknown schedule %q (valid: asap, alap)", name)
		}
	}
}

// WithInitWaitCycles makes Compile idle the chip for n quantum cycles
// before the circuit's first operation (initialisation by relaxation;
// Fig. 3 uses 10000 cycles = 200 us).
func WithInitWaitCycles(n int) Option {
	return func(c *config) { c.initWait = n }
}

// WithSOMQ enables single-operation-multiple-qubit combining when
// Compile emits a timing point (Section 3.4.1).
func WithSOMQ() Option {
	return func(c *config) { c.somq = true }
}

// WithInitialLayout maps the circuit's virtual qubits onto the listed
// physical qubits before scheduling, inserting SWAPs where two-qubit
// gates span non-adjacent placements.
func WithInitialLayout(physical ...int) Option {
	return func(c *config) { c.layout = physical }
}

// WithTimingSpec selects the timing-specification method the compiler
// lowers schedules with (Section 4.2): "ts3" (the default — short
// intervals in the bundle's PI field, long ones via QWAIT) or "ts1"
// (a standalone QWAIT per timing point, QuMIS-fashion). "ts2" places
// QWAITs in bundle slots, which the binary bundle format cannot encode;
// Compile rejects it with an explanatory error.
func WithTimingSpec(name string) Option {
	return func(c *config) {
		spec, err := compiler.ParseTimingSpec(name)
		if err != nil {
			c.fail("eqasm: %v", err)
			return
		}
		c.spec = spec
		c.specSet = true
	}
}

// WithWPI sets the PI field width in bits the ts3 timing lowering may
// use (default: the instantiation's width, 3 bits). Narrower widths
// force more standalone QWAITs (for no PI field at all, use
// WithTimingSpec("ts1")); widths beyond the instantiation's PI field
// are rejected at compile time.
func WithWPI(bits int) Option {
	return func(c *config) {
		if bits < 1 {
			c.fail("eqasm: PI width %d < 1 (use WithTimingSpec(\"ts1\") for QWAIT-only timing)", bits)
			return
		}
		c.wpi = bits
	}
}

// WithVLIWWidth sets how many quantum operations the compiler packs per
// bundle word (default: the instantiation's VLIW width, 2). Width 1
// serialises operations one per word; widths beyond the instantiation's
// are rejected at compile time.
func WithVLIWWidth(w int) Option {
	return func(c *config) {
		if w < 1 {
			c.fail("eqasm: VLIW width %d < 1", w)
			return
		}
		c.vliwWidth = w
	}
}

// NoiseModel collects the physical error parameters of the simulated
// transmon chip. Zero values disable each mechanism, so the zero
// NoiseModel is an ideal chip.
type NoiseModel struct {
	// T1Ns is the relaxation time in nanoseconds (0 = no relaxation).
	T1Ns float64
	// T2Ns is the total dephasing time in nanoseconds (0 = no
	// dephasing); must satisfy T2 <= 2*T1 when both are set.
	T2Ns float64
	// Gate1QError is the depolarizing probability per single-qubit gate.
	Gate1QError float64
	// Gate2QError is the depolarizing probability per two-qubit gate.
	Gate2QError float64
	// ReadoutError is the probability of a wrong measurement bit
	// (symmetric assignment error).
	ReadoutError float64
}

// CalibratedNoise returns the error budget of the paper's Section 5
// seven-qubit transmon processor: the readout error limiting active
// reset to 82.7% and the CZ error limiting Grover to 85.6%.
func CalibratedNoise() NoiseModel {
	return NoiseModel{
		T1Ns:         30_000,
		T2Ns:         22_000,
		Gate1QError:  0.0008,
		Gate2QError:  0.07,
		ReadoutError: 0.09,
	}
}

func (n NoiseModel) internal() quantum.NoiseModel {
	return quantum.NoiseModel{
		T1Ns:         n.T1Ns,
		T2Ns:         n.T2Ns,
		Gate1QError:  n.Gate1QError,
		Gate2QError:  n.Gate2QError,
		ReadoutError: n.ReadoutError,
	}
}

// stack is the instruction-set context a program is bound to: the chip,
// the operation configuration and the binary instantiation that
// assembler, compiler, disassembler and microarchitecture must share
// (Section 3.2). Stacks resolved from the same named options are
// interned, so machine pools and assembled programs are shared across
// call sites.
type stack struct {
	topo  *topology.Topology
	opCfg *isa.OpConfig
	inst  isa.Instantiation
}

var (
	topoCacheMu sync.Mutex
	topoCache   = map[string]*topology.Topology{}

	defaultOpConfig = sync.OnceValue(isa.DefaultConfig)
	surface17Inst   = sync.OnceValue(isa.Surface17Instantiation)

	hwconfCacheMu sync.Mutex
	hwconfCache   = map[string]*hwconfEntry{}
)

// hwconfEntry is one interned hardware configuration file.
type hwconfEntry struct {
	topo  *topology.Topology
	opCfg *isa.OpConfig
	noise *NoiseModel
}

// internHardwareConfig loads a hardware configuration once per path,
// so every program bound through the same file shares one context.
func internHardwareConfig(path string) (*hwconfEntry, error) {
	hwconfCacheMu.Lock()
	defer hwconfCacheMu.Unlock()
	if ent, ok := hwconfCache[path]; ok {
		return ent, nil
	}
	f, topo, opCfg, err := hwconf.LoadFull(path)
	if err != nil {
		return nil, fmt.Errorf("eqasm: hardware config: %w", err)
	}
	ent := &hwconfEntry{topo: topo, opCfg: opCfg}
	if f.Noise != nil {
		m, err := f.NoiseModel()
		if err != nil {
			return nil, fmt.Errorf("eqasm: hardware config: %w", err)
		}
		ent.noise = &NoiseModel{
			T1Ns:         m.T1Ns,
			T2Ns:         m.T2Ns,
			Gate1QError:  m.Gate1QError,
			Gate2QError:  m.Gate2QError,
			ReadoutError: m.ReadoutError,
		}
	}
	hwconfCache[path] = ent
	return ent, nil
}

var topoByName = map[string]func() *topology.Topology{
	"twoqubit":  topology.TwoQubit,
	"surface7":  topology.Surface7,
	"surface17": topology.Surface17,
	"iontrap5":  topology.IonTrap5,
	"ibmqx2":    topology.IBMQX2,
}

// Topologies lists the built-in chip topology names accepted by
// WithTopology, sorted.
func Topologies() []string {
	names := make([]string, 0, len(topoByName))
	for name := range topoByName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func internTopology(name string) (*topology.Topology, error) {
	build, ok := topoByName[name]
	if !ok {
		n, isChain := parseChainName(name)
		if !isChain {
			return nil, fmt.Errorf("eqasm: unknown topology %q (valid: %v or chain<N>, 2 <= N <= %d)",
				name, Topologies(), maxChainQubits)
		}
		build = func() *topology.Topology { return topology.Chain(n) }
	}
	topoCacheMu.Lock()
	defer topoCacheMu.Unlock()
	if t, ok := topoCache[name]; ok {
		return t, nil
	}
	t := build()
	topoCache[name] = t
	return t, nil
}

// maxChainQubits bounds the "chain<N>" topology family (the tableau
// needs ~(2N)^2/8 bytes; 4096 qubits is 8 MiB per machine).
const maxChainQubits = 4096

// parseChainName recognises the "chain<N>" topology family.
func parseChainName(name string) (int, bool) {
	digits, ok := strings.CutPrefix(name, "chain")
	if !ok || digits == "" {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 2 || n > maxChainQubits || strconv.Itoa(n) != digits {
		return 0, false
	}
	return n, true
}

var (
	chainInstMu    sync.Mutex
	chainInstCache = map[int]isa.Instantiation{}
)

// chainInstantiation interns the wide-mask instantiation of a chain
// chip, sharing the interned topology so stacks resolved from the same
// name compare equal (one machine pool, shareable plans).
func chainInstantiation(n int) (isa.Instantiation, error) {
	topo, err := internTopology(fmt.Sprintf("chain%d", n))
	if err != nil {
		return isa.Instantiation{}, err
	}
	chainInstMu.Lock()
	defer chainInstMu.Unlock()
	if inst, ok := chainInstCache[n]; ok {
		return inst, nil
	}
	inst := isa.ChainInstantiation(n)
	inst.PairTopology = topo
	chainInstCache[n] = inst
	return inst, nil
}

// resolveStack turns the named context options into the shared
// topology/operation-configuration/instantiation triple.
func (c *config) resolveStack() (stack, error) {
	var st stack
	if c.hwTopo != nil {
		st.topo, st.opCfg = c.hwTopo, c.hwOpCfg
	} else {
		name := c.topoName
		if name == "" {
			name = "twoqubit"
		}
		topo, err := internTopology(name)
		if err != nil {
			return stack{}, err
		}
		st.topo = topo
		st.opCfg = defaultOpConfig()
	}
	switch c.instName {
	case "", "auto":
		if c.topoName == "surface17" && c.hwTopo == nil {
			st.inst = surface17Inst()
		} else if n, isChain := parseChainName(c.topoName); isChain && c.hwTopo == nil {
			inst, err := chainInstantiation(n)
			if err != nil {
				return stack{}, err
			}
			st.inst = inst
		} else {
			st.inst = isa.Default
		}
	case "default":
		st.inst = isa.Default
	case "surface17":
		st.inst = surface17Inst()
	default:
		return stack{}, fmt.Errorf("eqasm: unknown instantiation %q (valid: default, surface17)", c.instName)
	}
	return st, nil
}
