package eqasm

import (
	"context"
	"sort"
)

// NewControlledJob builds a Job whose lifecycle is driven by the
// caller through the returned JobController, rather than by one of the
// built-in backends. It is the extension point for Backend
// implementations outside this package — a routing tier that dispatches
// requests to remote workers, a test double — letting them hand callers
// the same Job handle (Wait/Results/Status/Cancel/Stream) the Simulator
// and Client produce.
//
// The batch is validated exactly as Submit validates it: non-empty,
// with a program on every request. onCancel, when non-nil, is invoked
// (once) by Job.Cancel; it is the driver's hook to stop the underlying
// work. The driver must eventually call JobController.Finalize exactly
// once, after every request reached a terminal state, or the job's
// Wait blocks forever.
func NewControlledJob(id string, reqs []RunRequest, onCancel func()) (*Job, *JobController, error) {
	if _, err := normalizeBatch(context.Background(), reqs); err != nil {
		return nil, nil, err
	}
	j := newJob(id, reqs)
	j.cancelHook = onCancel
	return j, &JobController{j: j}, nil
}

// JobController is the driving side of a controlled Job: the state
// transitions the built-in backends perform internally, exposed to
// external drivers. All methods are safe for concurrent use across
// distinct request indices; Finalize must be called exactly once, after
// every request is terminal.
type JobController struct {
	j *Job
}

// Job returns the controlled job handle.
func (c *JobController) Job() *Job { return c.j }

// MarkRunning transitions request i (and the job, on its first running
// request) from queued to running. A no-op once the request is
// terminal.
func (c *JobController) MarkRunning(i int) { c.j.markRunning(i) }

// Finish records request i's terminal outcome: completed on a nil err,
// cancelled on a cancellation cause, failed otherwise. The first
// non-nil err of the batch becomes the job error. res may be nil or
// partial for failed and cancelled requests.
func (c *JobController) Finish(i int, res *Result, err error) {
	c.j.finishRequest(i, res, err)
}

// Replay fabricates one ShotResult per executed shot of res onto the
// job's stream — the histogram replay the Client performs for remotely
// completed requests — blocking until an attached consumer drains them
// or ctx is cancelled. Without an attached stream consumer it is a
// no-op. Call it before Finish so stream order matches status order.
func (c *JobController) Replay(ctx context.Context, i int, res *Result) error {
	return replayHistogram(ctx, c.j, i, res)
}

// EmitError delivers request i's failure to an attached stream
// consumer (a no-op without one). final marks the job's terminal
// message, which may wait longer for a slow consumer; non-final errors
// use a short grace so sibling requests are not stalled behind an
// absent consumer.
func (c *JobController) EmitError(i int, err error, final bool) {
	grace := siblingGrace
	if final {
		grace = terminalGrace
	}
	c.j.emitTerminal(i, err, grace)
}

// StopRemaining marks every request that has not finished as stopped
// with the given cause — cancelled for a cancellation cause, failed
// otherwise — giving each a zero-shot Result if it never produced one.
func (c *JobController) StopRemaining(cause error) {
	c.j.stopRemaining(0, cause)
}

// Finalize computes the job's terminal state from its requests, closes
// the stream and the Done channel. Call exactly once, after every
// request reached a terminal state (StopRemaining force-settles
// stragglers first if needed).
func (c *JobController) Finalize() { c.j.finalize() }

// replayHistogram fabricates one ShotResult per executed shot from a
// completed request's histogram, grouped by outcome in key order (a
// remote service aggregates shots rather than streaming them, so
// per-shot completion order is not preserved). It returns the
// cancellation cause when ctx expires before the replay drains, and is
// a no-op without an attached stream consumer.
func replayHistogram(ctx context.Context, job *Job, req int, res *Result) error {
	if !job.streaming.Load() || res == nil {
		return nil
	}
	keys := make([]string, 0, len(res.Histogram))
	for k := range res.Histogram {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shot := 0
	for _, key := range keys {
		for n := res.Histogram[key]; n > 0; n-- {
			sr := ShotResult{Shot: shot, Request: req, Key: key}
			// Reconstruct measurement records only when the key
			// unambiguously covers the result's qubit list; a program
			// whose control flow measures different qubit sets per shot
			// yields shorter keys, and fabricating zero-valued records
			// for never-measured qubits would be indistinguishable from
			// real outcomes.
			if len(key) == len(res.Qubits) {
				for i, q := range res.Qubits {
					bit := 0
					if key[i] == '1' {
						bit = 1
					}
					sr.Measurements = append(sr.Measurements, Measurement{Qubit: q, Result: bit})
				}
			}
			if err := job.emit(ctx, sr); err != nil {
				return err
			}
			shot++
		}
	}
	return nil
}
