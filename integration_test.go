// Cross-module integration tests: the compiled-and-executed semantics of
// the full stack (compiler -> assembler/binary -> microarchitecture ->
// chip) must agree with direct simulation of the source circuit, and the
// alternative Surface-17 instantiation must run end to end.
package eqasm_test

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"eqasm/internal/asm"
	"eqasm/internal/benchmarks"
	"eqasm/internal/compiler"
	"eqasm/internal/core"
	"eqasm/internal/isa"
	"eqasm/internal/microarch"
	"eqasm/internal/quantum"
	"eqasm/internal/topology"
)

// randomCircuit draws a unitary circuit (no measurements) over the
// two-qubit chip's qubits {0, 2}.
func randomCircuit(rng *rand.Rand, gates int) *compiler.Circuit {
	names := []string{"X", "Y", "X90", "Y90", "Xm90", "Ym90", "H", "S", "T"}
	c := &compiler.Circuit{NumQubits: 3}
	for i := 0; i < gates; i++ {
		if rng.Intn(5) == 0 {
			pair := [][2]int{{2, 0}, {0, 2}}[rng.Intn(2)]
			c.Gates = append(c.Gates, compiler.Gate{Name: "CZ", Qubits: []int{pair[0], pair[1]}})
		} else {
			q := []int{0, 2}[rng.Intn(2)]
			c.Gates = append(c.Gates, compiler.Gate{Name: names[rng.Intn(len(names))], Qubits: []int{q}})
		}
	}
	return c
}

// referenceState simulates the scheduled circuit directly, bypassing the
// whole control stack.
func referenceState(t *testing.T, cfg *isa.OpConfig, s *compiler.Schedule) *quantum.State {
	t.Helper()
	st := quantum.NewState(3, rand.New(rand.NewSource(1)))
	for _, g := range s.Gates {
		def, ok := cfg.ByName(g.Name)
		if !ok {
			t.Fatalf("unknown op %q", g.Name)
		}
		if g.IsTwoQubit() {
			st.Apply2(def.Unitary2, g.Qubits[0], g.Qubits[1])
		} else {
			st.Apply1(def.Unitary1, g.Qubits[0])
		}
	}
	return st
}

// The central equivalence property: for random circuits, compiling to
// eQASM, encoding to binary, decoding, and executing on the cycle-level
// microarchitecture produces exactly the state of direct simulation.
func TestCompiledExecutionMatchesDirectSimulation(t *testing.T) {
	cfg := isa.DefaultConfig()
	topo := topology.TwoQubit()
	emitter := compiler.NewEmitter(cfg, topo)

	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%30 + 3
		circ := randomCircuit(rng, n)
		sched, err := compiler.ASAP(circ)
		if err != nil {
			return false
		}
		prog, err := emitter.Emit(sched, compiler.EmitOptions{SOMQ: true, AppendStop: true})
		if err != nil {
			t.Logf("emit: %v", err)
			return false
		}
		// Through the binary, like a real upload.
		words, err := isa.EncodeProgram(prog, cfg)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		m, err := microarch.New(microarch.Config{Topo: topo, OpConfig: cfg})
		if err != nil {
			return false
		}
		if err := m.LoadBinary(words); err != nil {
			t.Logf("load: %v", err)
			return false
		}
		if err := m.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		got := m.Backend().(*quantum.SVBackend).State
		want := referenceState(t, cfg, sched)
		return got.Fidelity(want) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The Surface-17 instantiation (pair-list SMIT, 17-bit SMIS masks) runs a
// stabilizer parity measurement end to end: ancilla 9 measures the Z
// parity of data qubits 0 and 1.
func TestSurface17ParityMeasurement(t *testing.T) {
	for _, tc := range []struct {
		name string
		prep string
		want int
	}{
		{"even |00>", "", 0},
		{"odd |10>", "X D0", 1},
		{"odd |01>", "X D1", 1},
		{"even |11>", "X D01", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := core.NewSystem(core.Options{
				Topology:      topology.Surface17(),
				Instantiation: isa.Surface17Instantiation(),
			})
			if err != nil {
				t.Fatal(err)
			}
			prep := ""
			switch tc.prep {
			case "X D0":
				prep = "X S1\n"
			case "X D1":
				prep = "X S2\n"
			case "X D01":
				prep = "X S3\n"
			}
			// S1={0}, S2={1}, S3={0,1}, S0={9} (ancilla).
			src := `
SMIS S0, {9}
SMIS S1, {0}
SMIS S2, {1}
SMIS S3, {0, 1}
SMIT T0, {(9, 0)}
SMIT T1, {(9, 1)}
` + prep + `
H S0
CZ T0
2, CZ T1
2, H S0
MEASZ S0
QWAIT 50
STOP
`
			if err := sys.RunAssembly(src); err != nil {
				t.Fatal(err)
			}
			recs := sys.Machine.Measurements()
			if len(recs) != 1 {
				t.Fatalf("measurements: %+v", recs)
			}
			if recs[0].Qubit != 9 || recs[0].Result != tc.want {
				t.Fatalf("syndrome = q%d:%d, want q9:%d", recs[0].Qubit, recs[0].Result, tc.want)
			}
		})
	}
}

// The Surface-17 binary round-trips through its own instantiation.
func TestSurface17BinaryRoundTrip(t *testing.T) {
	sys, err := core.NewSystem(core.Options{
		Topology:      topology.Surface17(),
		Instantiation: isa.Surface17Instantiation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	words, err := sys.Binary(`
SMIS S0, {9, 16}
SMIT T0, {(9, 0)}
H S0
CZ T0
STOP
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Surface17Instantiation().DecodeProgram(words, sys.OpConfig)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Instrs[0].Mask != 1<<9|1<<16 {
		t.Fatalf("SMIS mask = %#x", prog.Instrs[0].Mask)
	}
	id, _ := topology.Surface17().EdgeID(9, 0)
	if prog.Instrs[1].Mask != 1<<uint(id) {
		t.Fatalf("SMIT mask = %#x", prog.Instrs[1].Mask)
	}
}

// Determinism: the same program with the same seed produces the same
// measurement records.
func TestDeterministicExecution(t *testing.T) {
	run := func() []int {
		sys, err := core.NewSystem(core.Options{Seed: 99, Noise: quantum.NoiseModel{ReadoutError: 0.2}})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		err = sys.Load("SMIS S0, {0}\nX90 S0\nMEASZ S0\nSTOP")
		if err != nil {
			t.Fatal(err)
		}
		err = sys.RunShots(50, func(_ int, m *microarch.Machine) {
			out = append(out, m.Measurements()[0].Result)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shot %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// The assembler and disassembler are mutually inverse over random valid
// programs (binary fixpoint).
func TestAssemblerDisassemblerFixpointProperty(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Topology: topology.Surface7()})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomAssembly(rng)
		words, err := sys.Binary(src)
		if err != nil {
			t.Logf("assemble failed for:\n%s\n%v", src, err)
			return false
		}
		d := asm.NewDisassembler(sys.OpConfig, sys.Topo)
		text, err := d.Disassemble(words)
		if err != nil {
			return false
		}
		words2, err := sys.Binary(text)
		if err != nil {
			t.Logf("reassemble failed for:\n%s\n%v", text, err)
			return false
		}
		if len(words) != len(words2) {
			return false
		}
		for i := range words {
			if words[i] != words2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomAssembly(rng *rand.Rand) string {
	lines := []string{
		"SMIS S0, {0}",
		"SMIS S1, {1, 4}",
		"SMIT T0, {(2, 0)}",
	}
	names := []string{"X", "Y", "X90", "Ym90", "H", "I"}
	for i := 0; i < 5+rng.Intn(15); i++ {
		switch rng.Intn(6) {
		case 0:
			lines = append(lines, "QWAIT "+itoa(rng.Intn(1000)))
		case 1:
			lines = append(lines, "LDI R"+itoa(rng.Intn(32))+", "+itoa(rng.Intn(5000)-2500))
		case 2:
			lines = append(lines, itoa(rng.Intn(8))+", "+names[rng.Intn(len(names))]+" S0 | "+names[rng.Intn(len(names))]+" S1")
		case 3:
			lines = append(lines, "CZ T0")
		case 4:
			lines = append(lines, "ADD R1, R2, R3")
		default:
			lines = append(lines, names[rng.Intn(len(names))]+" S"+itoa(rng.Intn(2)))
		}
	}
	lines = append(lines, "STOP")
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

func itoa(v int) string { return strconv.Itoa(v) }

// Full-stack QEC at 17-qubit scale: one surface-code syndrome-extraction
// cycle compiled with SOMQ (multi-qubit SMIS masks, multi-pair SMIT
// masks) and executed on the Surface-17 machine. Without errors every
// syndrome reads 0; an injected bit flip fires exactly the adjacent
// stabilizers.
func TestSurface17QECCycleExecution(t *testing.T) {
	topo := topology.Surface17()
	cfg := isa.DefaultConfig()
	ancillas := []int{9, 10, 11, 12, 13, 14, 15, 16}

	build := func(injectOn int) *isa.Program {
		circ := benchmarks.QEC(1)
		if injectOn >= 0 {
			// Prepend the error.
			withErr := &compiler.Circuit{NumQubits: circ.NumQubits}
			withErr.Gates = append(withErr.Gates,
				compiler.Gate{Name: "X", Qubits: []int{injectOn}})
			withErr.Gates = append(withErr.Gates, circ.Gates...)
			circ = withErr
		}
		sched, err := compiler.ASAP(circ)
		if err != nil {
			t.Fatal(err)
		}
		em := &compiler.Emitter{Config: cfg, Topo: topo, Inst: isa.Surface17Instantiation()}
		// The initialisation wait gives the pipeline reservation headroom:
		// the SOMQ-split SMIT updates make this workload denser than the
		// sustainable issue rate, the exact R_req > R_allowed effect of
		// Section 1.2 (TestIssueRateViolation exercises the failure mode).
		prog, err := em.Emit(sched, compiler.EmitOptions{SOMQ: true, AppendStop: true, InitWaitCycles: 100})
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the Surface-17 binary (pair-list SMIT).
		words, err := em.Inst.EncodeProgram(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := em.Inst.DecodeProgram(words, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}
	runQEC := func(p *isa.Program) map[int]int {
		m, err := microarch.New(microarch.Config{Topo: topo, OpConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(p)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		syn := map[int]int{}
		for _, r := range m.Measurements() {
			syn[r.Qubit] = r.Result
		}
		return syn
	}

	// No error: all syndromes 0.
	syn := runQEC(build(-1))
	if len(syn) != 8 {
		t.Fatalf("measured %d ancillas, want 8", len(syn))
	}
	for _, a := range ancillas {
		if syn[a] != 0 {
			t.Fatalf("clean cycle: ancilla %d fired (%v)", a, syn)
		}
	}
	// Bit flip on data qubit 4 (the centre): exactly its neighbouring
	// stabilizers fire.
	syn = runQEC(build(4))
	for _, a := range ancillas {
		want := 0
		for _, n := range topo.Neighbors(a) {
			if n == 4 {
				want = 1
			}
		}
		if syn[a] != want {
			t.Fatalf("error on q4: ancilla %d read %d, want %d (%v)", a, syn[a], want, syn)
		}
	}
}
