// Service smoke tests: every shipped testdata program is a valid
// payload for the concurrent execution service, and the aggregated
// histograms reproduce the programs' documented outcomes.
package eqasm_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eqasm"
	"eqasm/internal/service"
)

func TestServiceRunsShippedPrograms(t *testing.T) {
	svc, err := service.New(service.Config{
		Workers:    4,
		BatchShots: 8,
		Machine:    []eqasm.Option{eqasm.WithSeed(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	entries, err := os.ReadDir(filepath.Join("testdata", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped programs")
	}
	const shots = 40
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			src := loadProgramFile(t, e.Name())
			svc := svc
			if topoOpts := fixtureSimOptions(src); topoOpts != nil {
				// Chip-directive fixtures need a service whose machines
				// are built on their chip.
				tsvc, err := service.New(service.Config{
					Workers:    2,
					BatchShots: 8,
					Machine:    append([]eqasm.Option{eqasm.WithSeed(4)}, topoOpts...),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer tsvc.Close()
				svc = tsvc
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := svc.Run(ctx, service.JobSpec{Source: src, Shots: shots})
			if err != nil {
				t.Fatal(err)
			}
			if res.Shots != shots {
				t.Fatalf("ran %d shots, want %d", res.Shots, shots)
			}
			total := 0
			for _, n := range res.Histogram {
				total += n
			}
			if total != shots {
				t.Fatalf("histogram sums to %d, want %d", total, shots)
			}
			switch e.Name() {
			case "bell.eqasm":
				// Correlated outcomes only.
				if res.Histogram["00"]+res.Histogram["11"] != shots {
					t.Fatalf("Bell histogram: %v", res.Histogram)
				}
			case "active_reset.eqasm":
				// The conditional flip always restores |0>.
				if res.Histogram["0"] != shots {
					t.Fatalf("reset histogram: %v", res.Histogram)
				}
			case "cfc.eqasm":
				// Qubit 2 reads 1, the EQ path flips qubit 0 to 1.
				if res.Histogram["11"] != shots {
					t.Fatalf("CFC histogram: %v", res.Histogram)
				}
			case "loop.eqasm":
				// The double flip returns qubit 0 to |0>.
				if res.Histogram["0"] != shots {
					t.Fatalf("loop histogram: %v", res.Histogram)
				}
			}
		})
	}
}
