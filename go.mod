module eqasm

go 1.24
