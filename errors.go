package eqasm

import (
	"errors"
	"fmt"
	"strings"

	"eqasm/internal/asm"
	"eqasm/internal/microarch"
	"eqasm/internal/srcerr"
)

// Diagnostic is one assembler finding with its 1-based source position
// (Col 0 means the whole line).
type Diagnostic struct {
	Line int
	Col  int
	Msg  string
}

func (d Diagnostic) String() string {
	if d.Col > 0 {
		return fmt.Sprintf("line %d:%d: %s", d.Line, d.Col, d.Msg)
	}
	return fmt.Sprintf("line %d: %s", d.Line, d.Msg)
}

// AssembleError reports that source failed to assemble or parse,
// carrying every diagnostic with line and column positions. It is the
// error type all textual entry points — Assemble for eQASM assembly,
// ParseCircuit/CompileCircuit for cQASM circuits, and any Backend
// rejecting a program — return for malformed source.
type AssembleError struct {
	Diagnostics []Diagnostic
}

func (e *AssembleError) Error() string {
	msgs := make([]string, len(e.Diagnostics))
	for i, d := range e.Diagnostics {
		msgs[i] = d.String()
	}
	return "eqasm: assemble: " + strings.Join(msgs, "\n")
}

// wrapAssembleErr converts the assembler's ErrorList into the public
// typed error; other errors pass through.
func wrapAssembleErr(err error) error {
	if err == nil {
		return nil
	}
	var list asm.ErrorList
	if !errors.As(err, &list) {
		return err
	}
	out := &AssembleError{Diagnostics: make([]Diagnostic, len(list))}
	for i, e := range list {
		out.Diagnostics[i] = Diagnostic{Line: e.Line, Col: e.Col, Msg: e.Msg}
	}
	return out
}

// wrapParseErr converts a circuit front end's diagnostic list (the
// shared srcerr.List behind both the cQASM and OpenQASM parsers) into
// the same public typed error the assembler produces, so callers handle
// circuit and assembly diagnostics uniformly.
func wrapParseErr(err error) error {
	if err == nil {
		return nil
	}
	var list srcerr.List
	if !errors.As(err, &list) {
		return err
	}
	out := &AssembleError{Diagnostics: make([]Diagnostic, len(list))}
	for i, e := range list {
		out.Diagnostics[i] = Diagnostic{Line: e.Line, Col: e.Col, Msg: e.Msg}
	}
	return out
}

// RuntimeError reports a microarchitectural fault during execution: the
// quantum processor stops (Section 4.3). PC is the program counter of
// the faulting instruction and Cycle the quantum cycle (20 ns grid) at
// which the fault was detected; Shot is the repetition that failed.
// Unwrap exposes the underlying microarchitecture error.
type RuntimeError struct {
	Shot  int
	PC    int
	Cycle int64
	Err   error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("eqasm: shot %d failed at pc %d, cycle %d: %v", e.Shot, e.PC, e.Cycle, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// wrapShotErr lifts a machine-level failure into the public typed error,
// extracting PC and cycle from whichever fault the microarchitecture
// raised. m is the failed machine (nil if it could not even be built).
func wrapShotErr(shot int, m *microarch.Machine, err error) error {
	re := &RuntimeError{Shot: shot, PC: -1, Cycle: -1, Err: err}
	var (
		rerr *microarch.RuntimeError
		terr *microarch.TimingViolationError
		cerr *microarch.CollisionError
	)
	switch {
	case errors.As(err, &rerr):
		re.PC = rerr.PC
		if m != nil {
			re.Cycle = m.TickToCycle(rerr.Tick)
		}
	case errors.As(err, &terr):
		re.PC = terr.PC
		re.Cycle = terr.PointCycle
	case errors.As(err, &cerr):
		re.PC = cerr.PC
		re.Cycle = cerr.Cycle
	}
	return re
}
