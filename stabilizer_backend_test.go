// Stabilizer-backend contract through the public API: backend
// auto-selection routes noiseless Clifford-only plans to the tableau
// simulator, forced backends agree bit-for-bit with the state vector
// at overlapping sizes (the two backends draw one uniform variate per
// measurement, so their seeded random streams coincide), a 1000+-qubit
// GHZ executes through the Simulator in ordinary test time, and a
// non-Clifford gate never reaches the tableau.
package eqasm_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"eqasm"
	"eqasm/internal/service"
)

// ghzSource renders an n-qubit GHZ circuit for a chain<n> topology:
// H on qubit 0, a CNOT chain, and one wide measurement of every qubit.
func ghzSource(n int) string {
	var b strings.Builder
	b.WriteString("SMIS S0, {0}\n")
	b.WriteString("SMIS S1, {")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteString("}\n")
	b.WriteString("QWAIT 100\n")
	b.WriteString("H S0\n")
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "SMIT T0, {(%d, %d)}\n", i, i+1)
		b.WriteString("2, CNOT T0\n")
	}
	b.WriteString("2, MEASZ S1\n")
	b.WriteString("QWAIT 50\n")
	b.WriteString("STOP\n")
	return b.String()
}

// TestGHZ1024 is the tentpole acceptance check: a 1024-qubit GHZ state
// prepared and measured end to end through Simulator.Run. The state
// vector could never represent it (2^1024 amplitudes); auto-selection
// must route the Clifford-only plan to the stabilizer tableau, and
// every shot must collapse all 1024 qubits to one shared bit.
func TestGHZ1024(t *testing.T) {
	const n = 1024
	opts := []eqasm.Option{eqasm.WithTopology("chain1024"), eqasm.WithSeed(7)}
	prog, err := eqasm.Assemble(ghzSource(n), opts...)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != eqasm.BackendStabilizer {
		t.Fatalf("backend = %q, want %q (auto-selection over a Clifford-only plan)",
			res.Backend, eqasm.BackendStabilizer)
	}
	if res.Shots != 3 {
		t.Fatalf("shots = %d, want 3", res.Shots)
	}
	if len(res.Qubits) != n {
		t.Fatalf("measured %d qubits, want %d", len(res.Qubits), n)
	}
	for key, count := range res.Histogram {
		if len(key) != n {
			t.Fatalf("histogram key of length %d, want %d", len(key), n)
		}
		if key != strings.Repeat("0", n) && key != strings.Repeat("1", n) {
			t.Errorf("non-GHZ outcome ×%d: %s…%s", count, key[:8], key[n-8:])
		}
	}
	if got := res.GateProfile["gate2.perm"]; got != n-1 {
		t.Errorf("gate profile CNOT sites = %d, want %d", got, n-1)
	}
}

// runForced executes prog on one forced backend and returns the
// histogram.
func runForced(t *testing.T, sim *eqasm.Simulator, prog *eqasm.Program, backend string, seed int64) map[string]int {
	t.Helper()
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{
		Shots: 256, Seed: seed, Workers: 1, Backend: backend,
	})
	if err != nil {
		t.Fatalf("backend %s: %v", backend, err)
	}
	if res.Backend != backend {
		t.Fatalf("forced backend %q resolved to %q", backend, res.Backend)
	}
	return res.Histogram
}

// TestStabilizerStateVectorParity runs every shipped Clifford fixture
// through both backends at several seeds: the histograms must be
// exactly equal, not merely statistically close, because both backends
// consume identical random streams (one uniform draw per measurement).
func TestStabilizerStateVectorParity(t *testing.T) {
	sim, err := eqasm.NewSimulator(eqasm.WithTopology("twoqubit"))
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range service.SmokePrograms() {
		prog, err := eqasm.Assemble(src, eqasm.WithTopology("twoqubit"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []int64{1, 42, 9001} {
			sv := runForced(t, sim, prog, eqasm.BackendStateVector, seed)
			tab := runForced(t, sim, prog, eqasm.BackendStabilizer, seed)
			if len(sv) != len(tab) {
				t.Fatalf("%s seed %d: histogram sizes differ: sv %v, stabilizer %v", name, seed, sv, tab)
			}
			for k, v := range sv {
				if tab[k] != v {
					t.Errorf("%s seed %d key %q: sv %d, stabilizer %d", name, seed, k, v, tab[k])
				}
			}
			// These fixtures are noiseless and Clifford-only, so auto
			// must pick the tableau for them too.
			res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 1, Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Backend != eqasm.BackendStabilizer {
				t.Errorf("%s: auto backend = %q, want %q", name, res.Backend, eqasm.BackendStabilizer)
			}
		}
	}
}

// tGateSource is a minimal program whose plan is not Clifford-only.
const tGateSource = `
SMIS S0, {0}
QWAIT 100
H S0
T S0
MEASZ S0
QWAIT 50
STOP
`

// TestTGateNeverRoutesToStabilizer is the guard the CI workflow pins:
// a plan containing a T gate must auto-select the state vector, and
// forcing the tableau onto it must fail as a clean machine fault, not
// silently corrupt the distribution.
func TestTGateNeverRoutesToStabilizer(t *testing.T) {
	prog, err := eqasm.Assemble(tGateSource, eqasm.WithTopology("twoqubit"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithTopology("twoqubit"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != eqasm.BackendStateVector {
		t.Fatalf("auto backend = %q for a T-gate plan, want %q", res.Backend, eqasm.BackendStateVector)
	}
	_, err = sim.Run(context.Background(), prog, eqasm.RunOptions{
		Shots: 1, Backend: eqasm.BackendStabilizer,
	})
	if err == nil {
		t.Fatal("forced stabilizer run of a T-gate program succeeded, want a non-Clifford fault")
	}
	if !strings.Contains(err.Error(), "not a Clifford operation") {
		t.Fatalf("forced stabilizer error = %v, want a non-Clifford fault", err)
	}
}

// cliffordGates1 are the default-config single-qubit operations inside
// the Clifford group; cliffordGates2 the two-qubit ones.
var cliffordGates1 = []string{"I", "X", "Y", "Z", "S", "H", "X90", "Y90", "Xm90", "Ym90"}
var cliffordGates2 = []string{"CZ", "CNOT"}

// FuzzCliffordParity turns arbitrary bytes into a random Clifford
// circuit on the two-qubit chip and runs it through both forced
// backends: the seeded histograms must agree exactly. CI runs this as
// a fuzz smoke step (go test -fuzz=FuzzCliffordParity -fuzztime=20s .).
func FuzzCliffordParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 21, 13, 4, 9, 200, 33})
	f.Add([]byte(strings.Repeat("\x05\x0b", 16)))
	progs := map[string]*eqasm.Program{}
	sim, err := eqasm.NewSimulator(eqasm.WithTopology("twoqubit"))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		var b strings.Builder
		// The twoqubit chip has qubits {0, 1, 2} and directed edges
		// (0,2) and (0,2) reversed; gate everything with a 15-cycle
		// spacing so no pulse overlaps the measurement duration.
		b.WriteString("SMIS S0, {0}\nSMIS S1, {2}\nSMIS S2, {0, 2}\nSMIT T0, {(0, 2)}\nQWAIT 100\n")
		for _, c := range data {
			switch c % 4 {
			case 0, 1:
				gate := cliffordGates1[int(c/4)%len(cliffordGates1)]
				reg := "S0"
				if c&0x40 != 0 {
					reg = "S1"
				}
				fmt.Fprintf(&b, "15, %s %s\n", gate, reg)
			case 2:
				fmt.Fprintf(&b, "15, %s T0\n", cliffordGates2[int(c/4)%len(cliffordGates2)])
			case 3:
				b.WriteString("15, MEASZ S2\n")
			}
		}
		b.WriteString("15, MEASZ S2\nQWAIT 50\nSTOP\n")
		src := b.String()
		prog, ok := progs[src]
		if !ok {
			var err error
			prog, err = eqasm.Assemble(src, eqasm.WithTopology("twoqubit"))
			if err != nil {
				t.Fatalf("generated source failed to assemble: %v\n%s", err, src)
			}
			progs[src] = prog
		}
		sv := runForced(t, sim, prog, eqasm.BackendStateVector, 11)
		tab := runForced(t, sim, prog, eqasm.BackendStabilizer, 11)
		if len(sv) != len(tab) {
			t.Fatalf("histogram sizes differ: sv %v, stabilizer %v\n%s", sv, tab, src)
		}
		for k, v := range sv {
			if tab[k] != v {
				t.Errorf("key %q: sv %d, stabilizer %d\n%s", k, v, tab[k], src)
			}
		}
	})
}
