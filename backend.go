package eqasm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"eqasm/internal/core"
	"eqasm/internal/microarch"
	"eqasm/internal/plan"
)

// SeedStride separates the random streams of sibling executions: worker
// (or batch) w runs at base seed + w*SeedStride.
const SeedStride = core.SeedStride

// RunOptions tunes one Backend execution. The zero value runs the
// backend's configured defaults (WithShots, WithSeed, WithWorkers).
type RunOptions struct {
	// Shots is the repetition count; 0 uses the backend default.
	Shots int
	// Seed, when nonzero, overrides the backend's base seed for this
	// run's random streams.
	Seed int64
	// Workers, when nonzero, overrides the backend's shot fan-out.
	// Workers == 1 executes sequentially on one machine and is
	// bit-identical to the classic single-machine shot loop.
	Workers int
	// Backend, when non-empty, overrides the chip-simulation backend
	// for this run: "auto", "statevector", "densitymatrix" or
	// "stabilizer" (see WithBackend). The empty string uses the
	// backend's configured selection.
	Backend string
	// Params binds the program's symbolic rotation parameters (name →
	// angle in radians) with the same semantics as RunRequest.Params,
	// which takes precedence when both are set.
	Params map[string]float64
	// Fusion, when non-empty, overrides plan-time gate fusion for this
	// run: FusionOn ("on") or FusionOff ("off"). The empty string uses
	// the backend's WithFusion setting (default on). Fusion never
	// changes results — fixed-seed runs are identical either way — so
	// "off" exists for A/B benchmarking and per-gate profiling.
	Fusion string
}

// Measurement is one completed measurement of a shot, in completion
// order.
type Measurement struct {
	Qubit  int
	Result int
}

// ExecStats are execution counters: of one shot (ShotResult.Stats,
// Result.Stats) or summed over many (Result.TotalStats). The JSON tags
// are the service wire format.
type ExecStats struct {
	// Instructions counts retired instructions.
	Instructions int64 `json:"instructions"`
	// Bundles counts quantum bundle instructions issued.
	Bundles int64 `json:"bundles"`
	// QuantumOps counts micro-operations reaching the timing controller.
	QuantumOps int64 `json:"quantum_ops"`
	// CancelledOps counts operations gated off by fast conditional
	// execution.
	CancelledOps int64 `json:"cancelled_ops"`
	// FMRStallTicks counts classical ticks stalled on FMR.
	FMRStallTicks int64 `json:"fmr_stall_ticks"`
	// DurationNs is the simulated wall-clock time at halt (summed across
	// shots in an aggregate, it is total simulated chip time).
	DurationNs int64 `json:"duration_ns"`
}

// Add accumulates o's counters into s (used to aggregate per-shot stats
// into Result.TotalStats).
func (s *ExecStats) Add(o ExecStats) {
	s.Instructions += o.Instructions
	s.Bundles += o.Bundles
	s.QuantumOps += o.QuantumOps
	s.CancelledOps += o.CancelledOps
	s.FMRStallTicks += o.FMRStallTicks
	s.DurationNs += o.DurationNs
}

func execStats(m *microarch.Machine) ExecStats {
	st := m.Stats()
	return ExecStats{
		Instructions:  st.InstructionsExecuted,
		Bundles:       st.BundlesIssued,
		QuantumOps:    st.QuantumOpsTriggered,
		CancelledOps:  st.OpsCancelled,
		FMRStallTicks: st.FMRStallTicks,
		DurationNs:    st.FinalTimeNs,
	}
}

// ShotResult is one shot's outcome on a result stream.
type ShotResult struct {
	// Shot is the repetition index within its request (-1 on a terminal
	// error message).
	Shot int
	// Request is the index of the originating RunRequest within the
	// job's batch (0 for single-program runs).
	Request int
	// Key is the histogram key: the last result per measured qubit,
	// qubits ascending ("" when the shot measures nothing).
	Key string
	// Measurements lists every completed measurement in completion
	// order.
	Measurements []Measurement
	// Stats are the shot's execution counters.
	Stats ExecStats
	// Trace is the rendered device-operation trace (WithDeviceTrace).
	Trace []string
	// Err reports a failure: a shot fault (*RuntimeError) or a
	// cancellation cause. On a single-program stream it is terminal —
	// no further results follow; on a batch stream it ends only the
	// request named by Request, and later requests still deliver.
	Err error
}

// Result is a finished execution's aggregate outcome. The JSON tags
// are the machine-readable rendering used by cmd/eqasm-run -json.
type Result struct {
	// Shots is the number of shots actually executed (may be below the
	// request when the run was cancelled or failed mid-way).
	Shots int `json:"shots"`
	// Histogram counts measurement outcomes; keys are bitstrings over
	// the measured qubits in ascending qubit order (the last result per
	// qubit within a shot). A program measuring nothing contributes to
	// the "" key.
	Histogram map[string]int `json:"histogram"`
	// Qubits lists the measured qubits, ascending — the bit order of
	// the histogram keys.
	Qubits []int `json:"qubits,omitempty"`
	// Stats are the execution counters of the last completed shot only
	// — a sample, useful because identical shots of one program retire
	// near-identical instruction streams. For aggregates over the whole
	// run use TotalStats.
	Stats ExecStats `json:"stats"`
	// TotalStats sums every executed shot's counters.
	TotalStats ExecStats `json:"total_stats"`
	// Trace is the device-operation trace of the first traced shot
	// (WithDeviceTrace).
	Trace []string `json:"trace,omitempty"`
	// Backend names the chip simulator the run executed on:
	// "statevector", "densitymatrix" or "stabilizer" (empty on remote
	// results from servers predating backend selection).
	Backend string `json:"backend,omitempty"`
	// GateProfile counts the kernels the run actually executed per
	// shot, as classified by the decode-once plan: per-site kinds
	// (e.g. "gate1.hadamard", "gate2.cphase", "measure") and, when the
	// run used plan-time gate fusion, fused-kernel kinds
	// ("fused.gate1.generic", ...) plus the fusion counters
	// "fusion.sites.total" / "fusion.sites.fused" / "fusion.elided"
	// (the fused/unfused site ratio). Nil when the plan was not built.
	GateProfile map[string]int `json:"gate_profile,omitempty"`
	// Duration is the wall-clock execution time.
	Duration time.Duration `json:"duration_ns"`
}

// Backend executes bound programs: the in-process Simulator and the
// job-service Client both implement it, so callers switch between local
// simulation and remote serving without rewiring. Submit is the
// primitive — Run and RunStream are sugar over a one-request batch —
// so single runs, sweeps and multi-circuit workloads all flow through
// one job code path per backend.
type Backend interface {
	// Submit enqueues a batch of requests for asynchronous execution
	// and returns immediately with the job handle. Requests execute in
	// order; each honors its own RunOptions (shots, seed, workers)
	// exactly as an individual Run would, so a batch of N requests is
	// bit-identical per request to N sequential Run calls at the same
	// seeds. The batch's lifetime is bound to ctx: a ctx that expires
	// while the job is queued or running cancels it.
	Submit(ctx context.Context, reqs ...RunRequest) (*Job, error)
	// Run executes the program and aggregates the outcome histogram.
	// On failure or cancellation it returns the partial Result
	// alongside the error.
	Run(ctx context.Context, p *Program, opts RunOptions) (*Result, error)
	// RunStream executes the program and delivers each shot's outcome
	// as it completes. The channel closes when the run finishes; a
	// failure or cancellation delivers one final ShotResult with Err
	// set (dropped only when the consumer has stopped receiving). The
	// caller must drain the channel or cancel ctx.
	RunStream(ctx context.Context, p *Program, opts RunOptions) (<-chan ShotResult, error)
}

// Simulator is the in-process Backend: it executes programs on pooled,
// reseedable QuMA_v2 machines simulated at cycle level, fanning shots
// over workers and checking ctx between shots. Machines are pooled per
// instruction-set context, so mixed workloads (different chips or
// instantiations) coexist on one Simulator. Safe for concurrent use.
type Simulator struct {
	cfg *config
	// defaultStack is the simulator's own configured context; programs
	// bound to other contexts still run (each on its own pool), but
	// this is the chip identity the simulator advertises.
	defaultStack stack

	mu    sync.Mutex
	pools map[poolKey]*core.SystemPool
}

// poolKey identifies one machine pool: the instruction-set context,
// the chip-simulation backend its machines are built with, and whether
// fusion is disabled on them.
type poolKey struct {
	st       stack
	kind     string
	noFusion bool
}

var _ Backend = (*Simulator)(nil)

// NewSimulator builds a simulator Backend from the execution options
// (WithSeed, WithNoise, WithDensityMatrix, WithDeviceTrace, WithShots,
// WithWorkers, ...).
func NewSimulator(opts ...Option) (*Simulator, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	// Fail fast on unresolvable context options instead of failing the
	// first Run.
	st, err := cfg.resolveStack()
	if err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, defaultStack: st, pools: map[poolKey]*core.SystemPool{}}, nil
}

// Seed returns the simulator's base seed (WithSeed).
func (s *Simulator) Seed() int64 { return s.cfg.seed }

// Chip names the simulator's configured topology.
func (s *Simulator) Chip() string { return s.defaultStack.topo.Name }

// pool returns the machine pool for one instruction-set context,
// backend kind and fusion setting, creating it on first use.
func (s *Simulator) pool(st stack, kind string, noFusion bool) *core.SystemPool {
	key := poolKey{st: st, kind: kind, noFusion: noFusion}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[key]; ok {
		return p
	}
	p := core.NewSystemPool(core.Options{
		Topology:         st.topo,
		OpConfig:         st.opCfg,
		Instantiation:    st.inst,
		Noise:            s.cfg.noise.internal(),
		UseDensityMatrix: kind == BackendDensityMatrix,
		UseStabilizer:    kind == BackendStabilizer,
		RecordDeviceOps:  s.cfg.trace,
		MockMeasure:      s.cfg.mock,
		Microarch:        microarch.Config{DisableFusion: noFusion},
	})
	s.pools[key] = p
	return p
}

// resolveBackend turns a requested backend name ("" for the
// simulator's configured choice) into the concrete simulator kind for
// one program, applying the auto-selection rule: density matrix when
// configured, state vector under noise, the stabilizer tableau for
// noiseless Clifford-only plans, state vector otherwise. A parametric
// plan classifies per bound point: the request's binding (when
// non-nil) decides whether every bound rotation is Clifford.
func (s *Simulator) resolveBackend(p *Program, b *plan.Binding, requested string) (string, error) {
	name := requested
	if name == "" {
		name = s.cfg.backendName
	}
	switch name {
	case "", BackendAuto:
		if s.cfg.density {
			return BackendDensityMatrix, nil
		}
		if s.cfg.noise != (NoiseModel{}) {
			return BackendStateVector, nil
		}
		if b != nil {
			if b.CliffordOnly() {
				return BackendStabilizer, nil
			}
			return BackendStateVector, nil
		}
		if ex, _, err := p.executable(); err == nil && ex.CliffordOnly() {
			return BackendStabilizer, nil
		}
		return BackendStateVector, nil
	case BackendStabilizer:
		if s.cfg.noise != (NoiseModel{}) {
			return "", fmt.Errorf("eqasm: the stabilizer backend cannot simulate noise; drop the noise model or choose %q", BackendStateVector)
		}
		return BackendStabilizer, nil
	default:
		return name, nil
	}
}

func (s *Simulator) plan(opts RunOptions) (pl runPlan, err error) {
	pl.shots = opts.Shots
	if pl.shots < 0 {
		return runPlan{}, fmt.Errorf("eqasm: negative shot count %d", pl.shots)
	}
	if pl.shots == 0 {
		pl.shots = s.cfg.shots
	}
	pl.seed = opts.Seed
	if pl.seed == 0 {
		pl.seed = s.cfg.seed
	}
	pl.workers = opts.Workers
	if pl.workers < 0 {
		return runPlan{}, fmt.Errorf("eqasm: negative worker count %d", pl.workers)
	}
	if pl.workers == 0 {
		pl.workers = s.cfg.workers
	}
	if !validBackendName(opts.Backend) {
		return runPlan{}, fmt.Errorf("eqasm: unknown backend %q (valid: auto, statevector, densitymatrix, stabilizer)", opts.Backend)
	}
	pl.backend = opts.Backend
	switch opts.Fusion {
	case "":
		pl.noFusion = s.cfg.fusionOff
	case FusionOn:
	case FusionOff:
		pl.noFusion = true
	default:
		return runPlan{}, fmt.Errorf("eqasm: unknown fusion setting %q (valid: %q, %q)", opts.Fusion, FusionOn, FusionOff)
	}
	return pl, nil
}

// lastResults maps each measured qubit to its last result.
func lastResults(m *microarch.Machine) map[int]int {
	recs := m.Measurements()
	last := make(map[int]int, len(recs))
	for _, r := range recs {
		last[r.Qubit] = r.Result
	}
	return last
}

// renderTrace renders the machine's device-operation trace, nil when
// tracing is off.
func renderTrace(m *microarch.Machine) []string {
	trace := m.DeviceTrace()
	if len(trace) == 0 {
		return nil
	}
	out := make([]string, len(trace))
	for i, op := range trace {
		out[i] = op.String()
	}
	return out
}

// shotOutcome renders one completed shot's machine state.
func shotOutcome(shot int, m *microarch.Machine) ShotResult {
	recs := m.Measurements()
	sr := ShotResult{Shot: shot, Stats: execStats(m), Trace: renderTrace(m)}
	if len(recs) > 0 {
		sr.Measurements = make([]Measurement, len(recs))
		for i, r := range recs {
			sr.Measurements[i] = Measurement{Qubit: r.Qubit, Result: r.Result}
		}
		sr.Key = histKey(lastResults(m))
	}
	return sr
}

// histKey renders the last result per qubit, qubits ascending.
func histKey(last map[int]int) string {
	qubits := sortedQubits(last)
	var b strings.Builder
	for _, q := range qubits {
		if last[q] == 0 {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
	}
	return b.String()
}

func sortedQubits(last map[int]int) []int {
	if len(last) == 0 {
		return nil
	}
	qubits := make([]int, 0, len(last))
	for q := range last {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	return qubits
}

// fanShots runs p's shots through the machine pool of its context and
// backend kind, replaying the program's shared execution plan (lowered
// on first use); when the plan cannot be built it falls back to the
// semantically identical interpreter path. A non-nil binding routes
// through the bound-plan loader, patching the plan's parameter slots.
func (s *Simulator) fanShots(ctx context.Context, p *Program, b *plan.Binding, kind string, noFusion bool, seed int64, shots, workers int,
	observe func(shot int, m *microarch.Machine, runErr error) error) error {
	pool := s.pool(p.st, kind, noFusion)
	if b != nil {
		return pool.FanPlanBound(ctx, b, seed, shots, workers, observe)
	}
	if ex, _, err := p.executable(); err == nil {
		return pool.FanPlan(ctx, ex, seed, shots, workers, observe)
	}
	return pool.FanShots(ctx, p.prog, seed, shots, workers, observe)
}

// runPlan is one request's resolved execution parameters.
type runPlan struct {
	shots   int
	seed    int64
	workers int
	backend string
	// noFusion disables plan-time gate fusion for the request
	// (RunOptions.Fusion, falling back to WithFusion).
	noFusion bool
	// params is the request's effective parameter point
	// (RunRequest.Params, falling back to RunOptions.Params).
	params map[string]float64
}

// Submit implements Backend: it validates every request up front,
// returns the job handle immediately, and executes the batch on a
// driver goroutine — the async job layer over the machine-pool shot
// fan-out. Requests execute in submit order, each on its own resolved
// options (shots, seed, workers — worker w of request r runs at the
// request's seed + w*SeedStride), so per-request results are
// bit-identical to individual Run calls at the same seeds. A request
// failure fails that request only; sibling requests still run. The
// job is bound to ctx for its whole lifetime.
func (s *Simulator) Submit(ctx context.Context, reqs ...RunRequest) (*Job, error) {
	return s.submitJob(ctx, false, reqs)
}

func (s *Simulator) submitJob(ctx context.Context, streaming bool, reqs []RunRequest) (*Job, error) {
	ctx, err := normalizeBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	plans := make([]runPlan, len(reqs))
	for i, r := range reqs {
		pl, err := s.plan(r.Options)
		if err != nil {
			if len(reqs) > 1 {
				err = fmt.Errorf("request %d: %w", i, err)
			}
			return nil, err
		}
		pl.params = r.params()
		plans[i] = pl
	}
	job := newJob(localJobID(), reqs)
	if streaming {
		job.streaming.Store(true)
	}
	jctx, cancel := context.WithCancelCause(ctx)
	job.cancelHook = func() { cancel(context.Canceled) }
	go s.runJob(jctx, cancel, job, reqs, plans)
	return job, nil
}

// runJob is the job driver: requests in order, finalize at the end.
// A cancellation (Cancel or the submit ctx) stops the batch; any other
// request failure is recorded and the next request still runs.
func (s *Simulator) runJob(ctx context.Context, cancel context.CancelCauseFunc,
	j *Job, reqs []RunRequest, plans []runPlan) {
	defer cancel(nil)
	for i := range reqs {
		if ctx.Err() != nil {
			cause := context.Cause(ctx)
			j.emitTerminal(i, cause, terminalGrace)
			j.stopRemaining(i, cause)
			break
		}
		j.markRunning(i)
		res, err := s.executeRequest(ctx, j, i, reqs[i].Program, plans[i])
		j.finishRequest(i, res, err)
		if err != nil {
			if isCancellation(err) {
				j.emitTerminal(i, err, terminalGrace)
				j.stopRemaining(i+1, err)
				break
			}
			grace := siblingGrace
			if i == len(reqs)-1 {
				grace = terminalGrace // nothing queued behind the message
			}
			j.emitTerminal(i, err, grace)
		}
	}
	j.finalize()
}

// executeRequest runs one request's shots through the machine pool,
// aggregating the histogram and stats and feeding an attached stream
// consumer.
func (s *Simulator) executeRequest(ctx context.Context, j *Job, req int,
	p *Program, pl runPlan) (*Result, error) {
	res := &Result{Histogram: map[string]int{}}
	// Bind the parameter point once per request: the shared plan is
	// patched with a handful of per-slot gate matrices, never rebuilt.
	var binding *plan.Binding
	ex, _, planErr := p.executable()
	switch {
	case planErr == nil && (ex.Parametric() || len(pl.params) > 0):
		b, err := ex.Bind(pl.params)
		if err != nil {
			return res, err
		}
		binding = b
	case planErr != nil && len(pl.params) > 0:
		return res, fmt.Errorf("eqasm: cannot bind parameters without an execution plan: %w", planErr)
	}
	kind, err := s.resolveBackend(p, binding, pl.backend)
	if err != nil {
		return res, err
	}
	res.Backend = kind
	if planErr == nil {
		res.GateProfile = ex.GateProfile()
	}
	profiled := false
	start := time.Now()
	err = s.fanShots(ctx, p, binding, kind, pl.noFusion, pl.seed, pl.shots, pl.workers,
		func(shot int, m *microarch.Machine, runErr error) error {
			if runErr != nil {
				return wrapShotErr(shot, m, runErr)
			}
			if !profiled {
				// The static plan profile above is a fallback for runs
				// that fault before any shot completes; a completed
				// shot's machine reports the kernels it actually
				// executed (fused kinds under fusion).
				profiled = true
				if gp := m.ExecutedGateProfile(); gp != nil {
					res.GateProfile = gp
				}
			}
			st := execStats(m)
			res.Shots++
			last := lastResults(m)
			res.Histogram[histKey(last)]++
			if res.Qubits == nil {
				res.Qubits = sortedQubits(last)
			}
			res.Stats = st
			res.TotalStats.Add(st)
			if res.Trace == nil {
				res.Trace = renderTrace(m)
			}
			if j.streaming.Load() {
				sr := shotOutcome(shot, m)
				sr.Request = req
				return j.emit(ctx, sr)
			}
			return nil
		})
	res.Duration = time.Since(start)
	return res, err
}

// Run implements Backend as sugar over Submit: a one-request batch,
// awaited. With Workers == 1 (the default) and a fixed seed, the
// execution is bit-identical to a sequential shot loop on a freshly
// built machine at that seed.
func (s *Simulator) Run(ctx context.Context, p *Program, opts RunOptions) (*Result, error) {
	return runViaSubmit(ctx, s, p, opts)
}

// RunStream implements Backend as sugar over Submit: a one-request
// batch with the stream attached before execution starts, so every
// shot is delivered. With Workers > 1 shots may arrive out of order
// (each carries its index).
func (s *Simulator) RunStream(ctx context.Context, p *Program, opts RunOptions) (<-chan ShotResult, error) {
	job, err := s.submitJob(ctx, true, []RunRequest{{Program: p, Options: opts}})
	if err != nil {
		return nil, err
	}
	return job.Stream(), nil
}

// terminalGrace bounds how long a stream waits to hand its final error
// message to a consumer that is not currently at the channel. Generous,
// because nothing else is stalled by waiting on a job-ending message —
// only a lingering goroutine on a stream the consumer abandoned
// without draining.
const terminalGrace = 30 * time.Second

// siblingGrace bounds the same wait for a mid-batch failure message:
// the batch driver delivers it inline, so waiting here stalls the
// sibling requests still queued behind it.
const siblingGrace = time.Second

// sendTerminal delivers a stream's error message. The run context may
// already be cancelled here (cancellation is itself a terminal error),
// so racing the send against ctx.Done would drop the message
// nondeterministically even with an attentive consumer; instead the
// send gets a bounded grace period, dropping the message only when the
// consumer does not return to the channel within it.
func sendTerminal(ch chan<- ShotResult, sr ShotResult, grace time.Duration) {
	select {
	case ch <- sr:
	default:
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case ch <- sr:
		case <-t.C:
		}
	}
}
