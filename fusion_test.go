// Plan-time gate fusion must be invisible in results: a fused run is
// bit-identical to the same run with fusion disabled at the same seed,
// on every shipped fixture, on both exact backends, and per bound point
// of a parametric sweep. Only the gate profile may differ — it reports
// the kernels that actually executed, so a fused run shows fused.*
// kernel kinds and the fusion.* site counters.
package eqasm_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"eqasm"
	"eqasm/internal/httpapi"
	"eqasm/internal/service"
)

// fixtureSimOptions returns the public-API options a fixture's leading
// "# topo: <name>" directive demands (nil for the default chip).
func fixtureSimOptions(src string) []eqasm.Option {
	if name := fixtureTopo(src); name != "" {
		return []eqasm.Option{eqasm.WithTopology(name)}
	}
	return nil
}

// TestFusionHistogramParity forces each exact backend and compares a
// fused run against the identical run with fusion off: fixed seeds must
// give identical histograms on every shipped fixture.
func TestFusionHistogramParity(t *testing.T) {
	for name, src := range fixtureSources(t) {
		topoOpts := fixtureSimOptions(src)
		backends := []string{eqasm.BackendStateVector, eqasm.BackendDensityMatrix}
		shots := 48
		if topoOpts != nil {
			// The chain16 register has no density matrix (4^16 entries),
			// and its unfused reference pushes 2^16 amplitudes per gate.
			backends = backends[:1]
			shots = 10
		}
		for _, backend := range backends {
			for _, seed := range []int64{5, 19} {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, backend, seed), func(t *testing.T) {
					sim, err := eqasm.NewSimulator(topoOpts...)
					if err != nil {
						t.Fatal(err)
					}
					prog, err := eqasm.Assemble(src, topoOpts...)
					if err != nil {
						t.Fatal(err)
					}
					base := eqasm.RunOptions{Shots: shots, Seed: seed, Backend: backend}
					fusedOpts := base
					fusedOpts.Fusion = eqasm.FusionOn
					plainOpts := base
					plainOpts.Fusion = eqasm.FusionOff
					fused, err := sim.Run(context.Background(), prog, fusedOpts)
					if err != nil {
						t.Fatal(err)
					}
					plain, err := sim.Run(context.Background(), prog, plainOpts)
					if err != nil {
						t.Fatal(err)
					}
					if fused.Backend != backend || plain.Backend != backend {
						t.Fatalf("backends: fused %q, unfused %q, want %q", fused.Backend, plain.Backend, backend)
					}
					if !reflect.DeepEqual(fused.Histogram, plain.Histogram) {
						t.Fatalf("histograms diverge:\nfused:   %v\nunfused: %v", fused.Histogram, plain.Histogram)
					}
					if !reflect.DeepEqual(fused.Qubits, plain.Qubits) {
						t.Fatalf("measured qubits diverge: fused %v, unfused %v", fused.Qubits, plain.Qubits)
					}
					for k := range plain.GateProfile {
						if strings.HasPrefix(k, "fused.") || strings.HasPrefix(k, "fusion.") {
							t.Fatalf("fusion-off profile reports fused work: %v", plain.GateProfile)
						}
					}
				})
			}
		}
	}
}

// TestFusionProfileCounters pins the executed-kernel profile of a fused
// non-Clifford run: fused.* kernel kinds appear, the fusion site
// counters are consistent, and the elided count is the gap between
// total fused sites and emitted kernels.
func TestFusionProfileCounters(t *testing.T) {
	src := fixtureSources(t)["t_ladder"]
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), prog, eqasm.RunOptions{Shots: 4, Backend: eqasm.BackendStateVector})
	if err != nil {
		t.Fatal(err)
	}
	p := res.GateProfile
	if p == nil {
		t.Fatal("fused run has no gate profile")
	}
	total, fusedSites, elided := p[eqasm.ProfileFusionTotal], p[eqasm.ProfileFusionFused], p[eqasm.ProfileFusionElided]
	if total <= 0 || fusedSites <= 0 {
		t.Fatalf("no fusion sites recorded: %v", p)
	}
	if fusedSites > total {
		t.Fatalf("fused sites %d exceed total %d: %v", fusedSites, total, p)
	}
	kernels := 0
	for k, n := range p {
		if strings.HasPrefix(k, "fused.") {
			kernels += n
		}
	}
	if kernels == 0 {
		t.Fatalf("no fused kernels in profile: %v", p)
	}
	if kernels+elided != fusedSites {
		t.Fatalf("kernels %d + elided %d != fused sites %d: %v", kernels, elided, fusedSites, p)
	}
}

// TestWithFusionOption holds the backend-level switch equivalent to the
// per-run override: a simulator built WithFusion(false) reproduces the
// default fused histograms, and a per-run FusionOn overrides it back.
func TestWithFusionOption(t *testing.T) {
	src := fixtureSources(t)["rz_ladder"]
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	fusedSim, err := eqasm.NewSimulator(eqasm.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	plainSim, err := eqasm.NewSimulator(eqasm.WithSeed(9), eqasm.WithFusion(false))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqasm.RunOptions{Shots: 64, Backend: eqasm.BackendStateVector}
	fused, err := fusedSim.Run(context.Background(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainSim.Run(context.Background(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused.Histogram, plain.Histogram) {
		t.Fatalf("WithFusion(false) changed outcomes:\nfused:   %v\nunfused: %v", fused.Histogram, plain.Histogram)
	}
	if plain.GateProfile[eqasm.ProfileFusionTotal] != 0 {
		t.Fatalf("WithFusion(false) still profiled fusion: %v", plain.GateProfile)
	}
	// Per-run override wins over the backend setting.
	ovr := opts
	ovr.Fusion = eqasm.FusionOn
	forced, err := plainSim.Run(context.Background(), prog, ovr)
	if err != nil {
		t.Fatal(err)
	}
	if forced.GateProfile[eqasm.ProfileFusionTotal] == 0 {
		t.Fatalf("RunOptions.Fusion=on did not override WithFusion(false): %v", forced.GateProfile)
	}
	if !reflect.DeepEqual(forced.Histogram, fused.Histogram) {
		t.Fatalf("per-run fusion override changed outcomes: %v vs %v", forced.Histogram, fused.Histogram)
	}
}

// TestParamSweepFusionParity binds a parametric program over a sweep
// grid twice — fusion on and fusion off — as two batches over one
// compiled plan each, and requires bit-identical histograms per bound
// point. Static runs around the parametric slots fuse; the slots
// themselves stay patchable.
func TestParamSweepFusionParity(t *testing.T) {
	prog, err := eqasm.CompileCircuit(paramAnsatz)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eqasm.NewSimulator(eqasm.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	points := []float64{0, 0.4, 0.8, 1.2, 1.6, 2.0}
	run := func(fusion string) []*eqasm.Result {
		t.Helper()
		reqs := make([]eqasm.RunRequest, len(points))
		for i, theta := range points {
			reqs[i] = eqasm.RunRequest{
				Program: prog,
				Options: eqasm.RunOptions{Shots: 32, Seed: 17, Fusion: fusion, Backend: eqasm.BackendStateVector},
				Params:  map[string]float64{"theta": theta},
			}
		}
		job, err := sim.Submit(context.Background(), reqs...)
		if err != nil {
			t.Fatal(err)
		}
		results, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	fused := run(eqasm.FusionOn)
	plain := run(eqasm.FusionOff)
	for i := range points {
		if !reflect.DeepEqual(fused[i].Histogram, plain[i].Histogram) {
			t.Fatalf("theta=%g: histograms diverge:\nfused:   %v\nunfused: %v",
				points[i], fused[i].Histogram, plain[i].Histogram)
		}
	}
}

// TestGateProfileWireLocalAgreement holds the service's aggregated
// /v1/stats gate_profile to the local Result.GateProfile view: for a
// deterministic program the wire counters are exactly the local
// per-shot profile weighted by the shots executed — including the
// fused.* kernel kinds and fusion.* site counters.
func TestGateProfileWireLocalAgreement(t *testing.T) {
	src := fixtureSources(t)["t_ladder"]
	const shots = 40

	sim, err := eqasm.NewSimulator(eqasm.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ropts := eqasm.RunOptions{Shots: shots, Backend: eqasm.BackendStateVector}
	local, err := sim.Run(context.Background(), prog, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.GateProfile) == 0 {
		t.Fatal("local run has no gate profile")
	}

	svc, err := service.New(service.Config{
		Workers:    2,
		BatchShots: 8,
		Machine:    []eqasm.Option{eqasm.WithSeed(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	client := eqasm.NewClient(ts.URL, eqasm.WithHTTPClient(ts.Client()))
	if _, err := client.Run(context.Background(), prog, ropts); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int64, len(local.GateProfile))
	for k, v := range local.GateProfile {
		want[k] = int64(v) * shots
	}
	if !reflect.DeepEqual(stats.GateProfile, want) {
		t.Fatalf("wire gate profile disagrees with local view:\nwire:  %v\nlocal × %d shots: %v",
			stats.GateProfile, shots, want)
	}
}
