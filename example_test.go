package eqasm_test

import (
	"context"
	"fmt"
	"log"

	"eqasm"
)

// ExampleAssemble assembles a four-instruction program for the default
// two-qubit chip and shows its binary image.
func ExampleAssemble() {
	prog, err := eqasm.Assemble(`
SMIS S0, {0}
X S0
MEASZ S0
STOP
`)
	if err != nil {
		log.Fatal(err)
	}
	words, err := prog.Words()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d instructions\n", prog.NumInstructions())
	for i, w := range words {
		fmt.Printf("%d: %08x\n", i, w)
	}
	// Output:
	// 4 instructions
	// 0: 24000001
	// 1: 80800001
	// 2: 84800001
	// 3: 02000000
}

// ExampleBackend_Run executes a program on the in-process simulator
// Backend: an X gate always flips the qubit to |1> on the ideal chip.
func ExampleBackend_Run() {
	prog, err := eqasm.Assemble(`
SMIS S0, {0}
QWAIT 10000
X S0
MEASZ S0
QWAIT 50
STOP
`)
	if err != nil {
		log.Fatal(err)
	}
	var backend eqasm.Backend
	backend, err = eqasm.NewSimulator(eqasm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := backend.Run(context.Background(), prog, eqasm.RunOptions{Shots: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shots: %d\n", res.Shots)
	fmt.Printf("P(1) on qubit %d: %d/10\n", res.Qubits[0], res.Histogram["1"])
	// Output:
	// shots: 10
	// P(1) on qubit 0: 10/10
}
