// Round-trip property of the public API: every shipped eQASM program
// assembles, encodes to binary, disassembles to text the assembler
// accepts back, and re-encodes to the identical binary.
package eqasm_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eqasm"
)

func shippedPrograms(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("testdata", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped programs")
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for name, src := range shippedPrograms(t) {
		t.Run(name, func(t *testing.T) {
			opts := fixtureSimOptions(src)
			prog, err := eqasm.Assemble(src, opts...)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			words, err := prog.Words()
			if err != nil {
				if strings.Contains(err.Error(), "no 32-bit encoding") {
					// Literal-angle rotations bind through the microcode
					// instantiation and have no binary image (see
					// TestShippedProgramsRoundTrip).
					t.Skip("fixture uses literal-angle rotations (assembly-only)")
				}
				t.Fatalf("encode: %v", err)
			}
			bin, err := prog.Bytes()
			if err != nil {
				t.Fatalf("encode bytes: %v", err)
			}
			if len(bin) != 4*len(words) {
				t.Fatalf("binary is %d bytes for %d words", len(bin), len(words))
			}

			// Binary -> text -> binary must be a fixed point.
			text, err := eqasm.Disassemble(bin, opts...)
			if err != nil {
				t.Fatalf("disassemble: %v", err)
			}
			prog2, err := eqasm.Assemble(text, opts...)
			if err != nil {
				t.Fatalf("reassemble disassembly:\n%s\nerror: %v", text, err)
			}
			words2, err := prog2.Words()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if len(words2) != len(words) {
				t.Fatalf("round trip changed length: %d -> %d words", len(words), len(words2))
			}
			for i := range words {
				if words[i] != words2[i] {
					t.Fatalf("word %d changed: %08x -> %08x", i, words[i], words2[i])
				}
			}

			// The Program methods agree with the top-level functions.
			progText, err := prog.Disassemble()
			if err != nil {
				t.Fatalf("Program.Disassemble: %v", err)
			}
			if progText != text {
				t.Fatalf("Program.Disassemble differs from Disassemble(bin):\n%q\nvs\n%q", progText, text)
			}

			// And LoadBinary yields the same executable image.
			loaded, err := eqasm.LoadBinary(bin, opts...)
			if err != nil {
				t.Fatalf("LoadBinary: %v", err)
			}
			words3, err := loaded.Words()
			if err != nil {
				t.Fatal(err)
			}
			for i := range words {
				if words[i] != words3[i] {
					t.Fatalf("LoadBinary word %d changed: %08x -> %08x", i, words[i], words3[i])
				}
			}
		})
	}
}
